#pragma once

// Cluster interconnect model (x EDR InfiniBand class).
//
// Every node owns a full-duplex NIC. Outgoing messages serialize on the
// sender's transmit lane at min(link bandwidth, per-message rate cap) and
// arrive in the destination's receive mailbox after wire latency plus
// per-message software overhead at both ends. Delivery between a fixed
// (src, dst) pair is FIFO — the non-overtaking property MPI matching relies
// on.
//
// The wire is perfectly reliable by default. Arming a net::FaultConfig
// (any nonzero fault probability) turns it lossy — packets may be dropped,
// duplicated, corrupted, delayed past the FIFO clamp, or eaten by a
// transient link outage — and simultaneously arms the NIC-level go-back-N
// recovery protocol that restores the exactly-once in-order delivery
// contract: per-(src, dst) connection sequence numbers, a bounded send
// window with sender-side retention, cumulative acks, timeout +
// exponential-backoff retransmission, and duplicate suppression at the
// receiver. Upper layers (MPI matching, the runtime's eager channel) see
// the same per-pair FIFO mailbox stream either way; only timing differs.
// With faults disabled the historical code path runs untouched — wire
// format and event schedule stay byte-identical (DESIGN.md §8).
//
// A non-flat sim::NetConfig::topo (docs/TOPOLOGY.md) replaces the per-pair
// pipe with a topology: each transmission expands into per-hop switch
// traversals over shared-bandwidth links (net/topology.h), routes are
// chosen deterministically per message over the equal-cost candidates
// (net/router.h), and rails > 1 stripes a pair's messages across
// independent NIC injection lanes. A per-connection resequencer at the
// receiving rail mux (net/rail.h) restores the cross-rail/cross-path order
// before packets reach the FIFO mailbox stream; with faults armed the
// go-back-N machinery runs one connection per (src, dst, rail) lane
// underneath it. The flat single-rail default never touches any of this —
// the historical paths above run byte-identically.

#include <any>
#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "net/rail.h"
#include "net/router.h"
#include "net/topology.h"
#include "sim/config.h"
#include "sim/mailbox.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace dcuda::net {

// Receive channels: every NIC demultiplexes arrivals into per-protocol
// mailboxes. Channel 0 is the MPI endpoint's (mpi::Endpoint::rx_loop);
// channel 1 carries the runtime's eager/aggregated put batches
// (rt::NodeRuntime::eager_loop). Both share the transmit lane and the
// per-(src, dst) FIFO delivery clamp, so the non-overtaking guarantee
// holds across channels.
inline constexpr int kMpiChannel = 0;
inline constexpr int kRuntimeChannel = 1;
inline constexpr int kNumChannels = 2;

struct Packet {
  int src = -1;
  int dst = -1;
  double bytes = 0.0;
  std::any payload;
  // Declared after payload so the many MPI-side {src, dst, bytes, payload}
  // aggregate initializations keep defaulting to the MPI channel.
  int channel = kMpiChannel;
  // Reliable-delivery sequence per (src, dst, rail) connection, assigned by
  // the sending NIC while fault injection is armed; 0 on the reliable path.
  std::uint64_t seq = 0;
  // Topology path only: per-(src, dst) mux sequence (the resequencing key
  // at the receiving rail mux) and the rail the packet was striped onto.
  std::uint64_t mux_seq = 0;
  int rail = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg,
         const FaultConfig& fault = {});

  int num_nodes() const { return static_cast<int>(nics_.size()); }

  // Fire-and-forget: the packet appears in node `dst`'s mailbox. rate_cap
  // narrows usable bandwidth for this packet (GPUDirect reads on Kepler run
  // well below link rate). Reliable regardless of the fault model: an armed
  // FaultConfig only changes *when* the packet lands, never whether.
  void send(Packet p,
            sim::Rate rate_cap = std::numeric_limits<sim::Rate>::infinity());

  sim::Mailbox<Packet>& rx(int node, int channel = kMpiChannel) {
    return nics_[static_cast<size_t>(node)]->rx[static_cast<size_t>(channel)];
  }

  // Observability: wire-serialization spans and cumulative wire-byte
  // counters on the sender's fabric lane (docs/OBSERVABILITY.md).
  void set_tracer(sim::Tracer* t) { tracer_ = t; }

  double bytes_sent(int node) const { return nics_[static_cast<size_t>(node)]->bytes; }
  std::uint64_t messages_sent(int node) const { return nics_[static_cast<size_t>(node)]->msgs; }
  const sim::NetConfig& config() const { return cfg_; }
  const FaultConfig& fault_config() const { return fault_; }

  // True when any fault probability is nonzero and the go-back-N recovery
  // protocol is running.
  bool faults_armed() const { return armed_; }

  // Topology layer (docs/TOPOLOGY.md). topology() is null on the flat
  // single-rail default — the historical per-pair pipe.
  bool topology_active() const { return topo_ != nullptr; }
  const Topology* topology() const { return topo_.get(); }
  int rails() const { return rails_; }
  // Cumulative bytes carried by one interior link (congestion diagnostics).
  double link_bytes(int link) const {
    return links_[static_cast<size_t>(link)].bytes;
  }

  // Aggregate fault-injection and recovery counters (docs/TESTING.md
  // "Loss battery"; the fault self-tests and ablation_faults read these).
  // Counters are kept per shard (sender-side events accrue on the source
  // node's shard, receiver-side on the destination's) and merged field-wise
  // on read, so they stay exact under multi-threaded windows.
  struct FaultStats {
    std::uint64_t originals = 0;       // first transmissions of a sequence
    std::uint64_t retransmits = 0;     // go-back-N re-transmissions
    std::uint64_t timeouts = 0;        // retransmit timer expiries
    std::uint64_t drops = 0;           // wire drops (drop_prob)
    std::uint64_t corrupts = 0;        // CRC-detected corruption discards
    std::uint64_t dups = 0;            // duplicate deliveries injected
    std::uint64_t delays = 0;          // delay spikes applied
    std::uint64_t link_downs = 0;      // outage windows opened
    std::uint64_t outage_losses = 0;   // packets lost inside an outage
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_lost = 0;       // acks dropped or eaten by an outage
    std::uint64_t dup_suppressed = 0;  // receiver discarded already-seen seq
    std::uint64_t ooo_discarded = 0;   // receiver discarded past-gap seq
  };
  const FaultStats& fault_stats() const;

 private:
  // One retained outbound packet (go-back-N keeps everything unacked).
  struct Stored {
    Packet pkt;
    sim::Rate cap = std::numeric_limits<sim::Rate>::infinity();
  };

  // Sender-side reliable-connection state toward one destination (one per
  // (destination, rail) lane on a multi-rail fabric).
  struct TxConn {
    std::uint64_t next_seq = 0;   // last assigned sequence
    std::uint64_t acked = 0;      // highest cumulative ack received
    std::deque<Stored> unacked;   // transmitted, not yet acked (seq order)
    std::deque<Stored> backlog;   // waiting for send-window space
    sim::EventToken timer;        // pending retransmit timeout
    sim::Dur timeout = 0.0;       // current backed-off timeout; 0 = base
    sim::Time down_until = 0.0;   // transient outage on this directed link
  };

  // Receiver-side state for one (origin, rail): last accepted sequence.
  struct RxConn {
    std::uint64_t expected = 0;
  };

  // Shared-bandwidth interior link (topology path): transmissions
  // serialize against `free`. Touched only from the owning switch's shard.
  struct LinkState {
    sim::Time free = 0.0;
    double bytes = 0.0;
  };

  struct Nic {
    Nic(sim::Simulation& s, int num_nodes)
        : rx{sim::Mailbox<Packet>(s), sim::Mailbox<Packet>(s)},
          pair_deliver(static_cast<size_t>(num_nodes), 0.0),
          pair_seq(static_cast<size_t>(num_nodes), 0) {}
    sim::Time tx_free = 0.0;
    double bytes = 0.0;
    std::uint64_t msgs = 0;
    std::array<sim::Mailbox<Packet>, kNumChannels> rx;
    // Per-destination FIFO state: last scheduled delivery time (the clamp
    // that keeps the non-overtaking guarantee under jitter) and a wire
    // sequence number reported to the invariant oracle at delivery.
    std::vector<sim::Time> pair_deliver;
    std::vector<std::uint64_t> pair_seq;
    // Reliable-connection state, allocated only while faults are armed;
    // indexed by peer * rails + rail (rails == 1 off the topology path).
    std::vector<TxConn> tx_conn;  // sender side, per (destination, rail)
    std::vector<RxConn> rx_conn;  // receiver side, per (origin, rail)
    // Topology path only: rail injection lanes + striping, the sender's
    // per-destination mux sequence, and the receive-side resequencer per
    // origin (net/rail.h).
    std::unique_ptr<RailScheduler> rail_sched;
    std::vector<std::uint64_t> mux_next;
    std::vector<Resequencer<Packet>> reseq;
  };

  // -- Topology path (non-flat topology or rails > 1) --------------------
  void send_topo(Packet p, sim::Rate rate_cap);  // faults off
  // Select a route for the packet and schedule its first hop (or the direct
  // delivery when the route has no interior links). `tx_end` is when the
  // packet finishes serializing on its injection lane; `extra` carries
  // jitter/delay-spike offsets into the first leg.
  void route_and_launch(Packet pkt, double wire_bytes, sim::Time tx_end,
                        sim::Dur extra, bool reliable);
  // Traverse interior link route->links[idx] in the owning switch's shard.
  void hop(Packet pkt, const Route* route, std::size_t idx, double wire_bytes,
           bool reliable);
  // Receiving rail mux: resequence by mux_seq, then push to the mailbox.
  void mux_deliver(Packet pkt);

  // -- Lossy path (faults armed) ----------------------------------------
  // rail is 0 off the topology path, where the historical flat behaviour
  // is preserved byte-for-byte.
  void send_reliable(Packet p, sim::Rate rate_cap);
  void pump(int src, int dst, int rail);       // drain backlog into window
  void transmit(int src, int dst, int rail, const Stored& s, bool is_retx);
  void deliver_reliable(Packet pkt);           // receiver: accept/suppress
  void send_ack(int from, int to, int rail, std::uint64_t acked_seq);
  void handle_ack(int src, int dst, int rail, std::uint64_t acked_seq);
  void arm_timer(int src, int dst, int rail);
  void on_timeout(int src, int dst, int rail);
  TxConn& tx_conn(int src, int dst, int rail) {
    return nics_[static_cast<size_t>(src)]
        ->tx_conn[static_cast<size_t>(dst) * static_cast<size_t>(rails_) +
                  static_cast<size_t>(rail)];
  }
  RxConn& rx_conn(int dst, int src, int rail) {
    return nics_[static_cast<size_t>(dst)]
        ->rx_conn[static_cast<size_t>(src) * static_cast<size_t>(rails_) +
                  static_cast<size_t>(rail)];
  }

  // The executing shard's counter slice (shard 0 outside a run).
  FaultStats& stats() {
    const std::size_t k =
        static_cast<std::size_t>(sim::current_shard_index());
    return stats_shard_[k < stats_shard_.size() ? k : 0];
  }

  sim::Simulation& sim_;
  sim::NetConfig cfg_;
  FaultConfig fault_;
  bool armed_ = false;
  int rails_ = 1;
  sim::Dur hop_ = 0.0;       // per-hop latency (topology path)
  sim::Rate link_bw_ = 0.0;  // interior link bandwidth (topology path)
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<Router> router_;
  std::vector<LinkState> links_;
  std::vector<FaultStats> stats_shard_;
  mutable FaultStats merged_stats_;
  sim::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace dcuda::net
