#pragma once

// Cluster interconnect model (x EDR InfiniBand class).
//
// Every node owns a full-duplex NIC. Outgoing messages serialize on the
// sender's transmit lane at min(link bandwidth, per-message rate cap) and
// arrive in the destination's receive mailbox after wire latency plus
// per-message software overhead at both ends. Delivery between a fixed
// (src, dst) pair is FIFO — the non-overtaking property MPI matching relies
// on.

#include <any>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/mailbox.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace dcuda::net {

// Receive channels: every NIC demultiplexes arrivals into per-protocol
// mailboxes. Channel 0 is the MPI endpoint's (mpi::Endpoint::rx_loop);
// channel 1 carries the runtime's eager/aggregated put batches
// (rt::NodeRuntime::eager_loop). Both share the transmit lane and the
// per-(src, dst) FIFO delivery clamp, so the non-overtaking guarantee
// holds across channels.
inline constexpr int kMpiChannel = 0;
inline constexpr int kRuntimeChannel = 1;
inline constexpr int kNumChannels = 2;

struct Packet {
  int src = -1;
  int dst = -1;
  double bytes = 0.0;
  std::any payload;
  // Declared after payload so the many MPI-side {src, dst, bytes, payload}
  // aggregate initializations keep defaulting to the MPI channel.
  int channel = kMpiChannel;
};

class Fabric {
 public:
  Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg);

  int num_nodes() const { return static_cast<int>(nics_.size()); }

  // Fire-and-forget: the packet appears in node `dst`'s mailbox. rate_cap
  // narrows usable bandwidth for this packet (GPUDirect reads on Kepler run
  // well below link rate).
  void send(Packet p,
            sim::Rate rate_cap = std::numeric_limits<sim::Rate>::infinity());

  sim::Mailbox<Packet>& rx(int node, int channel = kMpiChannel) {
    return nics_[static_cast<size_t>(node)]->rx[static_cast<size_t>(channel)];
  }

  // Observability: wire-serialization spans and cumulative wire-byte
  // counters on the sender's fabric lane (docs/OBSERVABILITY.md).
  void set_tracer(sim::Tracer* t) { tracer_ = t; }

  double bytes_sent(int node) const { return nics_[static_cast<size_t>(node)]->bytes; }
  std::uint64_t messages_sent(int node) const { return nics_[static_cast<size_t>(node)]->msgs; }
  const sim::NetConfig& config() const { return cfg_; }

 private:
  struct Nic {
    Nic(sim::Simulation& s, int num_nodes)
        : rx{sim::Mailbox<Packet>(s), sim::Mailbox<Packet>(s)},
          pair_deliver(static_cast<size_t>(num_nodes), 0.0),
          pair_seq(static_cast<size_t>(num_nodes), 0) {}
    sim::Time tx_free = 0.0;
    double bytes = 0.0;
    std::uint64_t msgs = 0;
    std::array<sim::Mailbox<Packet>, kNumChannels> rx;
    // Per-destination FIFO state: last scheduled delivery time (the clamp
    // that keeps the non-overtaking guarantee under jitter) and a wire
    // sequence number reported to the invariant oracle at delivery.
    std::vector<sim::Time> pair_deliver;
    std::vector<std::uint64_t> pair_seq;
  };

  sim::Simulation& sim_;
  sim::NetConfig cfg_;
  sim::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace dcuda::net
