#pragma once

// GPU device model.
//
// The device owns N streaming multiprocessors. Each SM is a
// processor-sharing compute resource among its resident blocks; device
// memory is a device-wide bandwidth resource with a per-block streaming cap.
// Blocks are coroutines scheduled onto SM slots subject to occupancy limits
// (registers, threads, blocks per SM) and are never preempted: once resident
// they hold the slot until completion (§II-B — this is what makes
// synchronizing more blocks than fit in flight deadlock, which the
// simulation's deadlock detector reports).
//
// The crucial dCUDA mechanism falls out of the model: a block suspended in
// wait_notifications holds no compute or memory share, so co-resident blocks
// absorb the freed throughput — hardware supported overlap of computation
// and communication.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpu/mem.h"
#include "pcie/pcie.h"
#include "sim/config.h"
#include "sim/proc.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/trigger.h"

namespace dcuda::gpu {

struct LaunchConfig {
  int grid_blocks = 1;
  int threads_per_block = 128;
  int regs_per_thread = 26;  // the paper limits kernels to 26 registers
};

class Device;

// Handle passed to kernel code for one block: issues compute and memory
// work against the simulated hardware and provides identity information.
class BlockCtx {
 public:
  BlockCtx(Device& dev, int block_id, int grid_blocks, int sm_id)
      : dev_(&dev), block_id_(block_id), grid_blocks_(grid_blocks), sm_id_(sm_id) {}

  int block_id() const { return block_id_; }
  int grid_blocks() const { return grid_blocks_; }
  int sm_id() const { return sm_id_; }
  Device& device() { return *dev_; }
  sim::Simulation& sim();

  // `flops` double-precision operations on this block's SM.
  sim::Proc<void> compute_flops(double flops);
  // Compute expressed as time at the block's full (dedicated) issue rate.
  sim::Proc<void> compute(sim::Dur dedicated_time);
  // Streams `bytes` through device memory (reads+writes combined).
  sim::Proc<void> mem_traffic(double bytes);

  // Tracing hook for schedule visualizations (Fig. 1) and the structured
  // observability layer (docs/OBSERVABILITY.md).
  void trace(const char* activity, sim::Category category, sim::Time begin,
             sim::Time end, double bytes = 0.0);

 private:
  Device* dev_;
  int block_id_;
  int grid_blocks_;
  int sm_id_;
};

using Kernel = std::function<sim::Proc<void>(BlockCtx&)>;

// Device-resident mailbox (the per-rank on-device notification board of the
// kDeviceInitiated backend, docs/BACKENDS.md). Entries are deposited by
// whoever can write device memory — a peer block in the same address space,
// or the NIC through a GPUDirect-style posted PCIe write — and scanned in
// arrival order by the owning block's matcher. `epoch` counts total
// deposits, so a matcher that suspended mid-round can detect arrivals that
// bypassed the host→device queue (a lost wake-up otherwise). The board has
// no credit protocol: deposits are posted writes into device memory, not
// entries of a flow-controlled circular queue.
template <typename Entry>
class DeviceBoard {
 public:
  void deposit(Entry e) {
    entries_.push_back(std::move(e));
    ++epoch_;
  }
  std::deque<Entry>& entries() { return entries_; }
  const std::deque<Entry>& entries() const { return entries_; }
  std::uint64_t epoch() const { return epoch_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::deque<Entry> entries_;
  std::uint64_t epoch_ = 0;
};

class Device {
 public:
  Device(sim::Simulation& s, int node_id, const sim::DeviceConfig& cfg,
         pcie::PcieLink* pcie = nullptr, sim::Tracer* tracer = nullptr);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int node() const { return node_; }
  const sim::DeviceConfig& config() const { return cfg_; }
  sim::Simulation& simulation() { return sim_; }
  pcie::PcieLink* pcie() { return pcie_; }
  sim::Tracer* tracer() { return tracer_; }

  // -- Occupancy ---------------------------------------------------------

  // Resident blocks one SM can hold for this launch configuration
  // (whichever of threads, registers, or the block limit binds first).
  int occupancy_blocks_per_sm(const LaunchConfig& lc) const;
  int max_blocks_in_flight(const LaunchConfig& lc) const {
    return occupancy_blocks_per_sm(lc) * cfg_.num_sms;
  }

  // -- Kernel execution ----------------------------------------------------

  // Fork-join launch: returns when every block of the grid completed. Blocks
  // beyond the in-flight limit run as slots free up (sequential tail).
  sim::Proc<void> launch(const LaunchConfig& lc, Kernel k,
                         const std::string& name = "kernel");

  // -- Memory --------------------------------------------------------------

  // Allocates real backing store tagged as this device's memory.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    auto block = std::make_unique<std::vector<std::byte>>(count * sizeof(T) +
                                                          alignof(T));
    std::byte* p = block->data();
    const auto mis = reinterpret_cast<std::uintptr_t>(p) % alignof(T);
    if (mis != 0) p += alignof(T) - mis;
    allocations_.push_back(std::move(block));
    return std::span<T>(reinterpret_cast<T*>(p), count);
  }

  template <typename T>
  MemRef ref(std::span<T> s) {
    return mem_ref(s, node_);
  }

  sim::SharedResource& memory() { return memory_; }
  sim::SharedResource& sm_compute(int sm_id) {
    return sms_[static_cast<size_t>(sm_id)]->compute;
  }
  double per_block_flop_rate() const {
    return cfg_.sm_flops / cfg_.blocks_to_saturate_sm;
  }

  // Host-initiated copies (baseline MPI-CUDA path and MPI staging). Performs
  // the real memcpy after the simulated transfer time.
  sim::Proc<void> dma_copy(MemRef dst, MemRef src);

  int resident_blocks() const;

 private:
  struct SmState {
    explicit SmState(sim::Simulation& s, double flops, double cap)
        : compute(s, flops, cap) {}
    sim::SharedResource compute;
    int resident = 0;
  };

  struct LaunchState {
    LaunchConfig lc;
    Kernel kernel;
    std::string name;
    std::string block_name_prefix;  // "dev<node>/<name>/blk", built once
    int next_block = 0;
    int finished = 0;
    int per_sm_limit = 0;
    std::unique_ptr<sim::Trigger> done;
  };

  void fill_slots();
  sim::Proc<void> run_block(std::shared_ptr<LaunchState> st, int block_id,
                            int sm_id);

  sim::Simulation& sim_;
  int node_;
  sim::DeviceConfig cfg_;
  pcie::PcieLink* pcie_;
  sim::Tracer* tracer_;
  std::vector<std::unique_ptr<SmState>> sms_;
  sim::SharedResource memory_;
  std::vector<std::shared_ptr<LaunchState>> active_launches_;
  std::vector<std::unique_ptr<std::vector<std::byte>>> allocations_;
};

}  // namespace dcuda::gpu
