#pragma once

// Memory references used across the stack. "Device memory" is real host
// memory tagged with a device id: data movement in the simulation performs
// actual byte copies (so applications compute checkable results) while the
// timing models charge the appropriate simulated resources.

#include <cstddef>
#include <span>

namespace dcuda::gpu {

inline constexpr int kHostMemory = -1;

struct MemRef {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  int device = kHostMemory;  // node id of the owning device, or kHostMemory

  bool on_device() const { return device != kHostMemory; }
  MemRef subspan(std::size_t offset, std::size_t len) const {
    return MemRef{data + offset, len, device};
  }
};

template <typename T>
MemRef mem_ref(std::span<T> s, int device = kHostMemory) {
  return MemRef{reinterpret_cast<std::byte*>(s.data()), s.size_bytes(), device};
}

template <typename T>
MemRef mem_ref(T* p, std::size_t count, int device = kHostMemory) {
  return MemRef{reinterpret_cast<std::byte*>(p), count * sizeof(T), device};
}

}  // namespace dcuda::gpu
