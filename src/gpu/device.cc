#include "gpu/device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dcuda::gpu {

sim::Simulation& BlockCtx::sim() { return dev_->simulation(); }

sim::Proc<void> BlockCtx::compute_flops(double flops) {
  const sim::Time begin = sim().now();
  co_await dev_->sm_compute(sm_id_).use(flops);
  trace("compute", sim::Category::kCompute, begin, sim().now());
}

sim::Proc<void> BlockCtx::compute(sim::Dur dedicated_time) {
  co_await compute_flops(dedicated_time * dev_->per_block_flop_rate());
}

sim::Proc<void> BlockCtx::mem_traffic(double bytes) {
  const sim::Time begin = sim().now();
  co_await dev_->memory().use(bytes);
  trace("memory", sim::Category::kMemory, begin, sim().now(), bytes);
}

void BlockCtx::trace(const char* activity, sim::Category category,
                     sim::Time begin, sim::Time end, double bytes) {
  if (sim::Tracer* t = dev_->tracer(); t && t->enabled()) {
    t->record(sim::TraceSpan{begin, end, dev_->node(), block_id_, activity,
                             category, bytes});
  }
}

Device::Device(sim::Simulation& s, int node_id, const sim::DeviceConfig& cfg,
               pcie::PcieLink* pcie, sim::Tracer* tracer)
    : sim_(s),
      node_(node_id),
      cfg_(cfg),
      pcie_(pcie),
      tracer_(tracer),
      memory_(s, cfg.mem_bandwidth, cfg.per_block_mem_bandwidth) {
  sms_.reserve(static_cast<size_t>(cfg.num_sms));
  const double per_block_cap = cfg.sm_flops / cfg.blocks_to_saturate_sm;
  for (int i = 0; i < cfg.num_sms; ++i) {
    sms_.push_back(std::make_unique<SmState>(s, cfg.sm_flops, per_block_cap));
  }
}

int Device::occupancy_blocks_per_sm(const LaunchConfig& lc) const {
  if (lc.threads_per_block <= 0 || lc.threads_per_block > cfg_.max_threads_per_sm ||
      lc.regs_per_thread > cfg_.max_regs_per_thread) {
    return 0;
  }
  const int by_threads = cfg_.max_threads_per_sm / lc.threads_per_block;
  const int regs_per_block = lc.regs_per_thread * lc.threads_per_block;
  const int by_regs =
      regs_per_block > 0 ? cfg_.regs_per_sm / regs_per_block : cfg_.max_blocks_per_sm;
  return std::max(0, std::min({cfg_.max_blocks_per_sm, by_threads, by_regs}));
}

int Device::resident_blocks() const {
  int n = 0;
  for (const auto& sm : sms_) n += sm->resident;
  return n;
}

sim::Proc<void> Device::launch(const LaunchConfig& lc, Kernel k,
                               const std::string& name) {
  if (lc.grid_blocks <= 0) throw std::invalid_argument("empty grid");
  const int per_sm = occupancy_blocks_per_sm(lc);
  if (per_sm == 0) {
    throw std::invalid_argument("launch configuration exceeds device limits");
  }
  co_await sim_.delay(cfg_.launch_overhead);

  auto st = std::make_shared<LaunchState>();
  st->lc = lc;
  st->kernel = std::move(k);
  st->name = name;
  st->block_name_prefix =
      "dev" + std::to_string(node_) + "/" + name + "/blk";
  st->per_sm_limit = per_sm;
  st->done = std::make_unique<sim::Trigger>(sim_);
  active_launches_.push_back(st);
  fill_slots();

  while (st->finished < lc.grid_blocks) co_await st->done->wait();
  std::erase(active_launches_, st);
}

void Device::fill_slots() {
  // Greedy round-robin over SMs for every launch that still has pending
  // blocks. Keeps block->SM assignment deterministic: lowest index wins
  // ties — unless a schedule perturbation is installed, which picks among
  // the equally least-loaded SMs (the hardware scheduler promises no
  // particular assignment).
  sim::Perturbation* pert = sim_.perturbation();
  for (auto& st : active_launches_) {
    while (st->next_block < st->lc.grid_blocks) {
      int best_sm = -1;
      int best_load = INT32_MAX;
      for (int i = 0; i < cfg_.num_sms; ++i) {
        const int load = sms_[static_cast<size_t>(i)]->resident;
        if (load < st->per_sm_limit && load < cfg_.max_blocks_per_sm &&
            load < best_load) {
          best_load = load;
          best_sm = i;
        }
      }
      if (best_sm < 0) break;  // no slot free; retried when a block finishes
      if (pert != nullptr && pert->has(sim::Perturbation::kSmPick)) {
        int ties = 0;
        for (int i = 0; i < cfg_.num_sms; ++i) {
          if (sms_[static_cast<size_t>(i)]->resident == best_load) ++ties;
        }
        int k = pert->pick(ties);
        for (int i = 0; i < cfg_.num_sms; ++i) {
          if (sms_[static_cast<size_t>(i)]->resident == best_load && k-- == 0) {
            best_sm = i;
            break;
          }
        }
      }
      const int id = st->next_block++;
      ++sms_[static_cast<size_t>(best_sm)]->resident;
      if (tracer_ && tracer_->enabled()) {
        tracer_->counter_set(sim_.now(), node_, "resident_blocks",
                             resident_blocks());
      }
      sim_.spawn(run_block(st, id, best_sm),
                 st->block_name_prefix + std::to_string(id));
    }
  }
}

sim::Proc<void> Device::run_block(std::shared_ptr<LaunchState> st, int block_id,
                                  int sm_id) {
  co_await sim_.delay(cfg_.block_dispatch_overhead);
  BlockCtx ctx(*this, block_id, st->lc.grid_blocks, sm_id);
  co_await st->kernel(ctx);
  --sms_[static_cast<size_t>(sm_id)]->resident;
  if (tracer_ && tracer_->enabled()) {
    tracer_->counter_set(sim_.now(), node_, "resident_blocks", resident_blocks());
  }
  ++st->finished;
  st->done->notify_all();
  fill_slots();
}

sim::Proc<void> Device::dma_copy(MemRef dst, MemRef src) {
  assert(dst.bytes >= src.bytes);
  const double bytes = static_cast<double>(src.bytes);
  if (src.on_device() && dst.on_device()) {
    // Device-local copy through the memory system (read + write).
    co_await memory_.use(2.0 * bytes);
  } else if (pcie_ != nullptr && (src.on_device() || dst.on_device())) {
    const auto dir = src.on_device() ? pcie::Dir::kDeviceToHost
                                     : pcie::Dir::kHostToDevice;
    co_await pcie_->dma(dir, bytes);
  }
  if (bytes > 0) std::memcpy(dst.data, src.data, src.bytes);
}

}  // namespace dcuda::gpu
