#pragma once

// Wire/queue protocol between the device-side library and the host runtime
// (Fig. 4): commands flow device→host through per-rank command queues, acks
// and notifications flow host→device, and meta information travels between
// event handlers over MPI (Fig. 5).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dcuda::rt {

// Predefined communicators (§II-C): all ranks of the cluster, or all ranks
// of the local device.
enum class Comm : std::int32_t { kWorld = 0, kDevice = 1 };

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -2147483647;  // distinct from user tags

enum class CmdKind : std::int32_t {
  kWinCreate,
  kWinFree,
  kPut,
  kGet,
  kBarrier,
  kFinish,
};

// Fixed-size command queue entry (the paper bounds entries to the vector
// width; ours is a plain POD moved through the circular queue).
struct Command {
  CmdKind kind = CmdKind::kPut;
  Comm comm = Comm::kWorld;
  std::int32_t win_device_id = -1;  // origin-rank-local window id
  std::int32_t target_rank = -1;    // world rank
  std::uint64_t offset = 0;         // bytes into the target window
  std::uint64_t bytes = 0;
  std::byte* local_ptr = nullptr;   // origin-side data (device memory)
  std::int32_t tag = 0;
  std::uint64_t flush_id = 0;
  bool notify = true;
  // kWinCreate payload: registered local range.
  std::byte* win_base = nullptr;
  std::uint64_t win_bytes = 0;
  // Shared-memory put already executed on the device: the block manager only
  // loops the notification through the host (§III-A) and tracks flushing.
  bool local_already_copied = false;
};

enum class AckKind : std::int32_t {
  kWinCreated,
  kWinFreed,
  kBarrierDone,
  kFinished,
};

struct Ack {
  AckKind kind = AckKind::kWinCreated;
  std::int32_t win_global_id = -1;
  std::int32_t win_device_id = -1;
};

// Notification queue entry (§III-C: window id, source rank, tag — padded to
// a 32-byte entry matched by eight 4-byte-chunk threads in the paper).
struct Notification {
  std::int32_t win_device_id = -1;  // target-rank-local window id
  std::int32_t source = -1;         // world rank of the origin
  std::int32_t tag = 0;
};

// Device->host log entry (debug printing during kernel execution).
struct LogEntry {
  std::int32_t rank = -1;
  std::int64_t value = 0;
  char text[40] = {};
};

// Meta information for a notified remote memory access, sent origin event
// handler -> target event handler (step 2 of Fig. 5).
struct Meta {
  CmdKind kind = CmdKind::kPut;
  std::int32_t origin_rank = -1;
  std::int32_t target_rank = -1;
  std::int32_t win_global_id = -1;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::int32_t tag = 0;
  bool notify = true;
};

// MPI tag space used by the runtime.
inline constexpr int kMetaTag = 1 << 20;
inline constexpr int kPutDataTagBase = 1 << 21;  // + origin world rank
inline constexpr int kGetDataTagBase = 1 << 22;  // + origin world rank

// -- Eager/aggregated small-put fast path (sim::RmaConfig) -------------------
//
// Remote notified puts at or below RmaConfig::eager_threshold skip the
// two-message meta + payload pipeline: the origin block manager copies the
// payload out of device memory, coalesces same-target-node puts, and ships
// one runtime-channel fabric packet per batch. The target event handler
// lands every payload and commits the batch's notifications in one sweep.
//
// Mixed sizes keep the §III-B non-overtaking guarantee through a
// rendezvous fence: while the fast path is on, every rendezvous-path put
// carries an implicit per-(origin rank, target node) sequence number the
// target reconstructs from per-rank meta arrival order (metas travel FIFO,
// so no wire field is needed), and every eager record stores in
// `rdv_before` how many such puts its origin rank had issued. The target
// processes no record before rendezvous payloads 1..rdv_before of that
// rank have landed. A notified rendezvous put additionally routes its
// notification through the eager stream as a zero-byte `rdv_notify`
// record fenced on its own sequence number, so all notifications of a
// connection travel one FIFO channel and none can overtake payload data
// parked in an aggregator or still crossing the wire.

// One put inside an aggregated packet. Header size on the wire is modeled
// as kEagerRecordWireBytes, NOT sizeof — the in-memory struct may grow
// without shifting golden timings.
struct EagerPutRecord {
  std::int32_t origin_rank = -1;    // world rank
  std::int32_t target_rank = -1;    // world rank
  std::int32_t win_global_id = -1;
  std::uint64_t offset = 0;         // bytes into the target window
  std::uint64_t bytes = 0;          // payload length inside the batch buffer
  std::int32_t tag = 0;
  bool notify = true;
  // Rendezvous fence: rendezvous-path puts the origin rank issued to this
  // target node before (and, for rdv_notify records, including) this one.
  std::uint64_t rdv_before = 0;
  // True for the zero-byte notification stand-in of a rendezvous put: the
  // payload travels on the meta+payload pipeline, only the notification
  // rides the eager stream.
  bool rdv_notify = false;
};

// The fabric packet payload of one aggregated flush. `payload` concatenates
// the records' bytes in record order.
struct EagerBatch {
  int origin_node = -1;
  std::uint64_t batch_seq = 0;  // per (origin node, target node), from 1
  std::vector<EagerPutRecord> records;
  std::shared_ptr<std::vector<std::byte>> payload;
};

// Wire-size model of the eager path: per-packet envelope and per-record
// header (win id, offset, length, tag — the meta tuple, packed — plus the
// 8-byte rendezvous-fence sequence).
inline constexpr double kEagerEnvelopeBytes = 64.0;
inline constexpr double kEagerRecordWireBytes = 40.0;

}  // namespace dcuda::rt
