#pragma once

// Host-side dCUDA runtime, one instance per device (Fig. 4).
//
// The event handler is a set of host processes sharing one host CPU slot:
// per-rank command loops (the block managers) drain the device→host command
// queues and trigger nonblocking MPI activity; a meta receiver waits on
// pre-posted receives from remote event handlers and dispatches incoming
// remote-memory-access requests to the matching target block manager
// (Fig. 5); completed operations update the device-visible flush counter and
// enqueue notifications into device memory.
//
// Everything is functional: window registries, the device-id → global-id
// hash map, flush-id history, and the notification payloads all really
// exist, and the data paths memcpy real bytes.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpu/device.h"
#include "mpi/mpi.h"
#include "net/fabric.h"
#include "pcie/pcie.h"
#include "queue/circular_queue.h"
#include "runtime/protocol.h"
#include "sim/config.h"
#include "sim/mailbox.h"
#include "sim/resource.h"
#include "sim/trigger.h"

namespace dcuda::rt {

// Per-rank shared state. The queue rings, the flush counter, and the pending
// notification buffer conceptually live in device memory; the translation
// map and flush history live in host memory (block manager).
struct RankState {
  RankState(sim::Simulation& s, int global, int local,
            queue::Transport cmd_t, queue::Transport ack_t, queue::Transport notif_t,
            const sim::RuntimeConfig& rc)
      : global_rank(global),
        local_rank(local),
        cmd_q(s, rc.command_queue_entries, std::move(cmd_t)),
        ack_q(s, rc.ack_queue_entries, std::move(ack_t)),
        notif_q(s, rc.notification_queue_entries, std::move(notif_t)),
        flush_trig(s) {}

  int global_rank;
  int local_rank;

  queue::CircularQueue<Command> cmd_q;     // device -> host
  queue::CircularQueue<Ack> ack_q;         // host -> device
  queue::CircularQueue<Notification> notif_q;  // host -> device

  // Device-visible flush progress: id of the last completed remote memory
  // access whose predecessors are all done (§III-B). Written by the block
  // manager via posted PCIe writes.
  std::uint64_t flush_done = 0;
  sim::Trigger flush_trig;

  // Per-window operation counters for the paper's window flush: issued is
  // device-side state, completed is device-visible and advanced by the
  // block manager (completion order within a window is irrelevant — counts
  // suffice). Keyed by the rank-local window id.
  std::unordered_map<std::int32_t, std::uint64_t> win_issued;
  std::unordered_map<std::int32_t, std::uint64_t> win_completed;

  // Device-side library state (device memory, owned by the rank's block).
  std::uint64_t next_flush_id = 0;
  std::int32_t next_win_device_id = 0;
  // On-device notification board: dequeued-but-unmatched notifications in
  // both backends, and additionally the direct delivery target of the
  // kDeviceInitiated backend (NIC→device posted writes and device-local
  // puts deposit here, bypassing notif_q). Its epoch lets matchers detect
  // arrivals that bypassed the queue.
  gpu::DeviceBoard<Notification> board;

  // Host-side block manager state.
  std::unordered_map<std::int32_t, std::int32_t> win_translate;  // device->global
  std::array<std::int32_t, 2> win_create_seq{0, 0};              // per comm
  std::uint64_t flush_frontier = 0;        // host-side contiguous frontier
  std::set<std::uint64_t> flush_done_ooo;  // completed out of order
  sim::Trigger* host_flush_trig = nullptr;  // owned by NodeRuntime
  // Rendezvous fence (eager fast path only): rendezvous-path puts this rank
  // issued per target node. The target reconstructs the same sequence from
  // per-rank meta arrival order (protocol.h).
  std::unordered_map<int, std::uint64_t> rdv_issued;
};

// Job-scoped runtime identity (cluster::Scheduler, docs/CLUSTER.md). The
// default binding is the single-tenant identity: node index == physical
// node, tag 0, fabric-owned rx — byte-identical to the historical layout.
// Under a gang-scheduled job the runtime's node index and all rank
// arithmetic are job-relative (the job world's Endpoint translates to
// physical nodes at the wire), `job_tag` namespaces the global window ids,
// oracle keys and barrier domains of concurrent jobs, and `eager_rx` is the
// job-private runtime-channel mailbox fed by the Cluster rx mux.
struct JobBinding {
  int node_index = -1;      // job-relative node; -1 = use dev.node()
  int job_tag = 0;          // 0 = single-tenant (seed-identical keys)
  sim::Mailbox<net::Packet>* eager_rx = nullptr;  // null = fabric rx
};

class NodeRuntime {
 public:
  // `ranks_per_device` device ranks (GPU blocks) plus `host_ranks` host
  // ranks (§V extension) per node. Local ranks [0, rpd) are device ranks;
  // [rpd, rpd+host_ranks) run on the host CPU. World rank = node *
  // ranks_per_node() + local rank.
  NodeRuntime(sim::Simulation& s, gpu::Device& dev, mpi::Endpoint& ep,
              pcie::PcieLink& pcie, net::Fabric& fabric,
              const sim::MachineConfig& cfg, int ranks_per_device,
              int host_ranks = 0, JobBinding binding = {});
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  // Job-relative node index: all rank/window arithmetic runs on it. Equals
  // the physical node in the single-tenant default.
  int node() const { return binding_.node_index < 0 ? dev_.node() : binding_.node_index; }
  // Physical node: fabric packets, tracer spans and proc names.
  int phys_node() const { return dev_.node(); }
  int job_tag() const { return binding_.job_tag; }
  int ranks_per_device() const { return rpd_; }
  int host_ranks() const { return host_ranks_; }
  int ranks_per_node() const { return rpd_ + host_ranks_; }
  int num_nodes() const { return ep_.size(); }
  int world_size() const { return ranks_per_node() * ep_.size(); }
  gpu::Device& device() { return dev_; }
  mpi::Endpoint& endpoint() { return ep_; }
  const sim::MachineConfig& config() const { return cfg_; }
  sim::Simulation& simulation() { return sim_; }

  RankState& rank(int local_rank) { return *ranks_[static_cast<size_t>(local_rank)]; }
  bool is_host_rank(int local_rank) const { return local_rank >= rpd_; }
  bool device_initiated() const { return cfg_.device_initiated(); }

  // Oracle key namespacing (sim::InvariantObserver): concurrent jobs must
  // not collide in the observer's per-rank / per-node / per-domain maps.
  // job_tag 0 reproduces the single-tenant keys exactly.
  int oracle_rank(int rank) const { return (binding_.job_tag << 20) + rank; }
  int oracle_node(int n) const { return binding_.job_tag * 4096 + n; }
  int barrier_world_key() const { return -1 - binding_.job_tag; }

  // Host-rank processor resources (shared by the node's host ranks).
  sim::SharedResource& host_compute() { return *host_compute_; }
  sim::SharedResource& host_memory() { return *host_memory_; }

  // Device-visible window table: registration info of a window for a rank
  // local to this device (used for direct shared-memory accesses).
  struct WinRankInfo {
    std::byte* base = nullptr;
    std::uint64_t bytes = 0;
    std::int32_t win_device_id = -1;
    bool valid = false;
  };
  const WinRankInfo* window_peer(std::int32_t global_id, int local_rank) const;

  // Device->host log queue (one per device, shared by all ranks).
  queue::CircularQueue<LogEntry>& log_queue() { return *log_q_; }
  const std::vector<std::string>& log_lines() const { return log_lines_; }

  // Direct device-side notification delivery: deposits on the target rank's
  // on-device board, bypassing the host loop the paper uses. Used by the
  // kDeviceInitiated backend for every device-local notified access and by
  // the RuntimeConfig::local_notifications_via_host ablation.
  void device_local_notify(int target_local_rank, Notification n);

 private:
  struct WindowInfo {
    Comm comm = Comm::kWorld;
    std::vector<WinRankInfo> per_rank;  // indexed by local rank
    int registered = 0;
    int freed = 0;
  };

  // -- Eager/aggregated small-put fast path (sim::RmaConfig) -----------
  //
  // Origin side: one aggregator per target node parks eager-sized puts
  // until the batch-size/byte cap or the aggregation window flushes them
  // as a single runtime-channel fabric packet. Target side: eager_loop
  // lands batches strictly in delivery order and commits each batch's
  // notifications per rank with one batched queue write.
  struct EagerOrigin {
    int local_rank = -1;
    std::uint64_t flush_id = 0;
    std::int32_t win_device_id = -1;
  };
  struct EagerAggregator {
    std::vector<EagerPutRecord> records;
    std::vector<EagerOrigin> origins;  // parallel to records
    std::vector<std::byte> payload;    // concatenated record payloads
    std::uint64_t epoch = 0;           // bumped per flush; stale timers no-op
    std::uint64_t next_batch_seq = 0;
  };
  // A batch taken out of its aggregator but not yet on the wire. Staging is
  // synchronous (no suspension), so callers can stage a full batch, append
  // into the fresh one, and only then pay the (suspending) ship — the
  // per-rank record order stays intact.
  struct StagedEager {
    int target_node = -1;
    EagerBatch batch;
    std::vector<EagerOrigin> origins;
  };
  // Target-side rendezvous fence per origin rank: contiguous landed
  // frontier over the per-rank meta arrival sequence (payloads can land out
  // of order, hence the out-of-order set).
  struct RdvTracker {
    std::uint64_t frontier = 0;
    std::set<std::uint64_t> landed_ooo;
  };

  sim::Proc<void> command_loop(int local_rank);
  sim::Proc<void> meta_loop();
  sim::Proc<void> log_loop();
  sim::Proc<void> eager_loop();
  sim::Proc<void> host_dispatch_cost();
  // Backend-routed dispatch: the host worker (dispatch_cost, shared
  // host_cpu_ slot) under kHostLoop, the NIC command processor
  // (nic_dispatch_cost, nic_proc_) under kDeviceInitiated. Host-rank
  // commands always take the host worker — host ranks run on the CPU and
  // their runtime agent stays the host loop in both backends.
  sim::Proc<void> dispatch_cost(bool host_path = false);

  sim::Proc<void> process_command(int local_rank, Command c);
  sim::Proc<void> handle_win_create(int local_rank, Command c);
  sim::Proc<void> handle_win_free(int local_rank, Command c);
  sim::Proc<void> handle_put(int local_rank, Command c);
  sim::Proc<void> handle_get(int local_rank, Command c);
  sim::Proc<void> handle_barrier(int local_rank, Command c);
  sim::Proc<void> handle_finish(int local_rank, Command c);
  sim::Proc<void> handle_meta(Meta m, std::uint64_t rdv_seq);
  sim::Proc<void> handle_eager_put(int local_rank, Command c);
  StagedEager stage_eager(int target_node);
  sim::Proc<void> ship_eager(StagedEager s);
  sim::Proc<void> flush_eager(int target_node);
  sim::Proc<void> eager_flush_timer(int target_node, std::uint64_t epoch);
  sim::Proc<void> handle_eager_batch(EagerBatch b);
  void mark_rdv_landed(int origin_rank, std::uint64_t seq);

  sim::Proc<void> push_notification(int local_rank, Notification n);
  // Batched delivery: all of a batch's notifications for one rank reach the
  // device through a single enqueue_batch commit.
  sim::Proc<void> push_notification_batch(int local_rank,
                                          std::vector<Notification> ns);
  // kDeviceInitiated delivery for device ranks: the NIC writes the
  // notification records straight into the rank's on-device board with one
  // posted PCIe write — no host queue bookkeeping, no credits.
  sim::Proc<void> board_deliver(int local_rank, std::vector<Notification> ns);
  // Marks flush id `id` complete for the rank and propagates the contiguous
  // frontier to device memory.
  sim::Proc<void> complete_flush(RankState& rs, std::uint64_t id,
                                 std::int32_t win_device_id);

  queue::Transport pcie_transport(pcie::Dir write_dir);
  // Command-queue transport of the kDeviceInitiated backend: entry writes
  // ring the NIC doorbell (pcie::PcieLink::doorbell) instead of landing in
  // host memory. Same posted-write timing and ordering as pcie_transport.
  queue::Transport doorbell_transport();

  sim::Simulation& sim_;
  gpu::Device& dev_;
  mpi::Endpoint& ep_;
  pcie::PcieLink& pcie_;
  net::Fabric& fabric_;
  sim::MachineConfig cfg_;
  int rpd_;
  int host_ranks_;
  JobBinding binding_;

  sim::FifoResource host_cpu_;  // single runtime worker thread per device
  sim::FifoResource nic_proc_;  // NIC command processor (kDeviceInitiated)
  std::unique_ptr<sim::SharedResource> host_compute_;
  std::unique_ptr<sim::SharedResource> host_memory_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<std::unique_ptr<sim::Trigger>> host_flush_trigs_;
  std::map<std::int32_t, WindowInfo> windows_;  // by global id
  std::array<int, 2> barrier_arrivals_{0, 0};   // per comm
  std::vector<EagerAggregator> eager_agg_;      // by target node; empty when
                                                // the fast path is disabled
  // Rendezvous fence, target side (allocated only with the fast path on):
  // kPut metas seen per origin rank (reconstructs the origin's rdv_issued
  // sequence from FIFO meta arrival), landed frontiers, and the trigger
  // batch handlers wait on.
  std::unordered_map<int, std::uint64_t> rdv_meta_seen_;
  std::unordered_map<int, RdvTracker> rdv_trackers_;
  std::unique_ptr<sim::Trigger> rdv_landed_trig_;

  std::unique_ptr<queue::CircularQueue<LogEntry>> log_q_;
  std::vector<std::string> log_lines_;
};

}  // namespace dcuda::rt
