#include "runtime/node_runtime.h"

#include <cassert>
#include <cstring>
#include <optional>

#include "sim/invariants.h"

namespace dcuda::rt {

namespace {
// Global window ids: (job, communicator, per-communicator creation
// sequence). Window creation is collective, so every node derives the same
// id for the same world window without any agreement traffic; the per-rank
// device-side counter is translated through the block manager's hash map
// (§III-B). The job tag keeps concurrent gang-scheduled jobs' windows from
// colliding in the observer's lifecycle tracking; tag 0 (single-tenant)
// reproduces the historical ids bit for bit.
std::int32_t global_win_id(int job_tag, Comm comm, std::int32_t seq) {
  return (static_cast<std::int32_t>(job_tag) << 22) |
         (static_cast<std::int32_t>(comm) << 20) | seq;
}
}  // namespace

queue::Transport NodeRuntime::pcie_transport(pcie::Dir write_dir) {
  queue::Transport t;
  pcie::PcieLink* link = &pcie_;
  t.write = [link, write_dir](double bytes, std::function<void()> commit) -> sim::Proc<void> {
    co_await link->post_write(write_dir, bytes, std::move(commit));
  };
  const pcie::Dir read_dir = write_dir == pcie::Dir::kHostToDevice
                                 ? pcie::Dir::kDeviceToHost
                                 : pcie::Dir::kHostToDevice;
  t.read_tail = [link, read_dir](double bytes) -> sim::Proc<void> {
    co_await link->mapped_read(read_dir, bytes);
  };
  return t;
}

queue::Transport NodeRuntime::doorbell_transport() {
  queue::Transport t;
  pcie::PcieLink* link = &pcie_;
  t.write = [link](double bytes, std::function<void()> commit) -> sim::Proc<void> {
    co_await link->doorbell(pcie::Dir::kDeviceToHost, bytes, std::move(commit));
  };
  t.read_tail = [link](double bytes) -> sim::Proc<void> {
    co_await link->mapped_read(pcie::Dir::kHostToDevice, bytes);
  };
  return t;
}

NodeRuntime::NodeRuntime(sim::Simulation& s, gpu::Device& dev, mpi::Endpoint& ep,
                         pcie::PcieLink& pcie, net::Fabric& fabric,
                         const sim::MachineConfig& cfg, int ranks_per_device,
                         int host_ranks, JobBinding binding)
    : sim_(s), dev_(dev), ep_(ep), pcie_(pcie), fabric_(fabric), cfg_(cfg),
      rpd_(ranks_per_device), host_ranks_(host_ranks), binding_(binding),
      host_cpu_(s, 1), nic_proc_(s, 1) {
  host_compute_ = std::make_unique<sim::SharedResource>(
      s, cfg.host.flops, cfg.host.flops / cfg.host.threads_to_saturate);
  host_memory_ = std::make_unique<sim::SharedResource>(
      s, cfg.host.mem_bandwidth,
      cfg.host.mem_bandwidth / cfg.host.threads_to_saturate);
  const int rpn = ranks_per_node();
  ranks_.reserve(static_cast<size_t>(rpn));
  for (int r = 0; r < rpn; ++r) {
    // Device-rank queues cross PCIe; host-rank queues live entirely in host
    // memory (local transport). Under kDeviceInitiated a device rank's
    // command writes ring the NIC doorbell instead of landing in host
    // memory — same posted-write timing, separately traced.
    const bool host = is_host_rank(r);
    ranks_.push_back(std::make_unique<RankState>(
        s, node() * rpn + r, r,
        host ? queue::local_transport(s)
             : (device_initiated() ? doorbell_transport()
                                   : pcie_transport(pcie::Dir::kDeviceToHost)),
        host ? queue::local_transport(s) : pcie_transport(pcie::Dir::kHostToDevice),
        host ? queue::local_transport(s) : pcie_transport(pcie::Dir::kHostToDevice),
        cfg.runtime));
    host_flush_trigs_.push_back(std::make_unique<sim::Trigger>(s));
    ranks_.back()->host_flush_trig = host_flush_trigs_.back().get();
    if (sim::Tracer* tr = dev.tracer()) {
      // All ranks of the node share the per-device depth counters.
      ranks_.back()->cmd_q.set_tracer(tr, phys_node(), "cmd_queue");
      ranks_.back()->ack_q.set_tracer(tr, phys_node(), "ack_queue");
      ranks_.back()->notif_q.set_tracer(tr, phys_node(), "notif_queue");
    }
    s.spawn(command_loop(r),
            "bm@" + std::to_string(phys_node()) + "/" + std::to_string(r),
            /*daemon=*/true);
  }
  log_q_ = std::make_unique<queue::CircularQueue<LogEntry>>(
      s, cfg.runtime.logging_queue_entries, pcie_transport(pcie::Dir::kDeviceToHost));
  if (sim::Tracer* tr = dev.tracer()) {
    log_q_->set_tracer(tr, phys_node(), "log_queue");
  }
  s.spawn(meta_loop(), "event-handler@" + std::to_string(phys_node()),
          /*daemon=*/true);
  s.spawn(log_loop(), "log@" + std::to_string(phys_node()), /*daemon=*/true);
  if (cfg_.rma.eager_enabled()) {
    // Only spawned when the fast path is on: disabled runs keep the exact
    // reference event schedule (golden traces).
    eager_agg_.resize(static_cast<size_t>(num_nodes()));
    rdv_landed_trig_ = std::make_unique<sim::Trigger>(s);
    s.spawn(eager_loop(), "eager@" + std::to_string(phys_node()),
            /*daemon=*/true);
  }
}

const NodeRuntime::WinRankInfo* NodeRuntime::window_peer(std::int32_t global_id,
                                                         int local_rank) const {
  auto it = windows_.find(global_id);
  if (it == windows_.end()) return nullptr;
  const WinRankInfo& info = it->second.per_rank[static_cast<size_t>(local_rank)];
  return info.valid ? &info : nullptr;
}

void NodeRuntime::device_local_notify(int target_local_rank, Notification n) {
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->notification_delivered(/*via_board=*/true);
  }
  RankState& rs = rank(target_local_rank);
  rs.board.deposit(n);
  rs.notif_q.nonempty_trigger().notify_all();
}

sim::Proc<void> NodeRuntime::host_dispatch_cost() {
  co_await host_cpu_.acquire();
  co_await sim_.delay(cfg_.runtime.dispatch_cost);
  host_cpu_.release();
}

sim::Proc<void> NodeRuntime::dispatch_cost(bool host_path) {
  if (device_initiated() && !host_path) {
    // NIC command processor: FIFO like the host worker (concurrent ships to
    // one target must hit the wire in order), but cheaper per item and not
    // shared with any host-side work.
    co_await nic_proc_.acquire();
    co_await sim_.delay(cfg_.runtime.nic_dispatch_cost);
    nic_proc_.release();
  } else {
    co_await host_dispatch_cost();
  }
}

sim::Proc<void> NodeRuntime::command_loop(int local_rank) {
  RankState& rs = rank(local_rank);
  // One name for every command processor of this rank — built once, not per
  // dispatched command (the loop runs once per device-side operation).
  const std::string proc_name =
      "cmd@" + std::to_string(phys_node()) + "/" + std::to_string(local_rank);
  const bool host_path = is_host_rank(local_rank);
  for (;;) {
    Command c = co_await rs.cmd_q.dequeue();
    co_await dispatch_cost(host_path);
    sim_.spawn(process_command(local_rank, c), proc_name);
  }
}

sim::Proc<void> NodeRuntime::process_command(int local_rank, Command c) {
  // Round-robin queue polling: the command sits until the worker's sweep
  // reaches this rank. Spawned per command, so discovery latency pipelines
  // across commands while per-rank processing order is preserved (spawn
  // order == resume order). The NIC backend skips the sweep entirely —
  // doorbells are interrupt-driven (host ranks keep the host worker).
  if (!device_initiated() || is_host_rank(local_rank)) {
    co_await sim_.delay(cfg_.runtime.host_wakeup_latency);
  }
  switch (c.kind) {
    case CmdKind::kWinCreate:
      co_await handle_win_create(local_rank, c);
      break;
    case CmdKind::kWinFree:
      co_await handle_win_free(local_rank, c);
      break;
    case CmdKind::kPut:
      co_await handle_put(local_rank, c);
      break;
    case CmdKind::kGet:
      co_await handle_get(local_rank, c);
      break;
    case CmdKind::kBarrier:
      co_await handle_barrier(local_rank, c);
      break;
    case CmdKind::kFinish:
      co_await handle_finish(local_rank, c);
      break;
  }
}

sim::Proc<void> NodeRuntime::handle_win_create(int local_rank, Command c) {
  RankState& rs = rank(local_rank);
  const int comm_idx = static_cast<int>(c.comm);
  const std::int32_t gid = global_win_id(
      binding_.job_tag, c.comm,
      rs.win_create_seq[static_cast<size_t>(comm_idx)]++);
  rs.win_translate[c.win_device_id] = gid;

  WindowInfo& wi = windows_[gid];
  if (wi.per_rank.empty()) {
    wi.comm = c.comm;
    wi.per_rank.resize(static_cast<size_t>(ranks_per_node()));
    if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
      obs->window_created(gid);
    }
  }
  WinRankInfo& info = wi.per_rank[static_cast<size_t>(local_rank)];
  info.base = c.win_base;
  info.bytes = c.win_bytes;
  info.win_device_id = c.win_device_id;
  info.valid = true;
  ++wi.registered;

  if (wi.registered < ranks_per_node()) co_return;
  // Last local participant: synchronize across nodes for world windows (the
  // collective part of win_create), then acknowledge every local rank.
  if (c.comm == Comm::kWorld && ep_.size() > 1) co_await ep_.barrier();
  for (int r = 0; r < ranks_per_node(); ++r) {
    Ack a;
    a.kind = AckKind::kWinCreated;
    a.win_global_id = gid;
    a.win_device_id = wi.per_rank[static_cast<size_t>(r)].win_device_id;
    co_await rank(r).ack_q.enqueue(a);
  }
}

sim::Proc<void> NodeRuntime::handle_win_free(int local_rank, Command c) {
  RankState& rs = rank(local_rank);
  const std::int32_t gid = rs.win_translate.at(c.win_device_id);
  WindowInfo& wi = windows_.at(gid);
  ++wi.freed;
  rs.win_translate.erase(c.win_device_id);
  if (wi.freed < ranks_per_node()) co_return;
  if (wi.comm == Comm::kWorld && ep_.size() > 1) co_await ep_.barrier();
  const std::vector<WinRankInfo> per_rank = wi.per_rank;  // acks need ids
  windows_.erase(gid);
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->window_freed(gid);
  }
  for (int r = 0; r < ranks_per_node(); ++r) {
    Ack a;
    a.kind = AckKind::kWinFreed;
    a.win_global_id = gid;
    a.win_device_id = per_rank[static_cast<size_t>(r)].win_device_id;
    co_await rank(r).ack_q.enqueue(a);
  }
}

sim::Proc<void> NodeRuntime::handle_put(int local_rank, Command c) {
  RankState& rs = rank(local_rank);
  if (c.local_already_copied) {
    // Shared-memory put: the device library already moved the data; the
    // block manager loops the notification through the host (§III-A) and
    // completes the flush id.
    sim::InvariantObserver* obs = sim_.invariant_observer();
    if (obs != nullptr) {
      obs->data_put_issued(oracle_rank(rs.global_rank),
                           oracle_rank(c.target_rank));
    }
    if (c.notify) {
      const int target_local = c.target_rank - node() * ranks_per_node();
      const std::int32_t gid = rs.win_translate.at(c.win_device_id);
      const WinRankInfo* peer = window_peer(gid, target_local);
      assert(peer != nullptr);
      Notification n;
      n.win_device_id = peer->win_device_id;
      n.source = rs.global_rank;
      n.tag = c.tag;
      if (obs != nullptr) {
        // Local notified puts are ordered by per-rank command processing;
        // issue, landing, and delivery coincide in this coroutine.
        obs->notify_put_ordered(oracle_rank(rs.global_rank),
                                oracle_rank(c.target_rank), gid, c.bytes,
                                c.tag);
        obs->data_put_landed(oracle_rank(rs.global_rank),
                             oracle_rank(c.target_rank));
        obs->notify_put_delivered(oracle_rank(rs.global_rank),
                                  oracle_rank(c.target_rank), gid, c.bytes,
                                  c.tag);
      }
      co_await push_notification(target_local, n);
    } else if (obs != nullptr) {
      obs->data_put_landed(oracle_rank(rs.global_rank),
                           oracle_rank(c.target_rank));
    }
    co_await complete_flush(rs, c.flush_id, c.win_device_id);
    co_return;
  }

  const int target_node = c.target_rank / ranks_per_node();
  if (cfg_.rma.eager_enabled() && c.bytes <= cfg_.rma.eager_threshold) {
    // Small-put fast path: park the payload in the per-target aggregator
    // instead of the two-message meta + payload pipeline. Non-notified puts
    // take it too — put_2d rows must share their final notification's
    // channel or the notification could overtake the data.
    co_await handle_eager_put(local_rank, c);
    co_return;
  }
  Meta m;
  m.kind = CmdKind::kPut;
  m.origin_rank = rs.global_rank;
  m.target_rank = c.target_rank;
  m.win_global_id = rs.win_translate.at(c.win_device_id);
  m.offset = c.offset;
  m.bytes = c.bytes;
  m.tag = c.tag;
  m.notify = c.notify;

  sim::InvariantObserver* obs = sim_.invariant_observer();
  if (cfg_.rma.eager_enabled()) {
    // Rendezvous fence (protocol.h): this put takes the next per-(rank,
    // target node) sequence number; the target recovers it from per-rank
    // meta arrival order, so everything from the increment to the isends
    // below must stay suspension-free. A notified put additionally routes
    // its notification through the FIFO eager stream as a zero-byte record
    // fenced on its own sequence, so it cannot overtake parked eager data
    // and cannot commit before its own (or any earlier) payload landed.
    const std::uint64_t seq = ++rs.rdv_issued[target_node];
    if (obs != nullptr) {
      obs->data_put_issued(oracle_rank(rs.global_rank),
                           oracle_rank(c.target_rank));
    }
    m.notify = false;
    if (c.notify) {
      if (obs != nullptr) {
        obs->notify_put_ordered(oracle_rank(rs.global_rank),
                                oracle_rank(c.target_rank), m.win_global_id,
                                c.bytes, c.tag);
      }
      EagerAggregator& agg = eager_agg_[static_cast<size_t>(target_node)];
      EagerPutRecord r;
      r.origin_rank = rs.global_rank;
      r.target_rank = c.target_rank;
      r.win_global_id = m.win_global_id;
      r.offset = c.offset;
      r.bytes = 0;  // payload travels on the meta+payload pipeline
      r.tag = c.tag;
      r.notify = true;
      r.rdv_before = seq;
      r.rdv_notify = true;
      agg.records.push_back(r);
      // flush_id 0: the rendezvous waits below complete the real flush.
      agg.origins.push_back(EagerOrigin{local_rank, 0, -1});
    }
  } else if (obs != nullptr && c.bytes <= cfg_.mpi.eager_limit) {
    // Sequence point of the §III-B non-overtaking guarantee: metas leave in
    // per-rank command order on a FIFO channel and eager payloads follow the
    // same posting-order matching. (Rendezvous-sized transfers promise only
    // completion order, like MPI, so they are not sequence-tracked while the
    // fast path — and with it the rendezvous fence — is off.)
    obs->data_put_issued(oracle_rank(rs.global_rank),
                         oracle_rank(c.target_rank));
    if (c.notify) {
      obs->notify_put_ordered(oracle_rank(rs.global_rank),
                              oracle_rank(c.target_rank), m.win_global_id,
                              c.bytes, c.tag);
    }
  }
  // Step 2/3 of Fig. 5: forward meta information to the target event handler
  // and move the data directly device-to-device with a second nonblocking
  // send. The meta buffer must stay alive until the send buffered it.
  auto meta_buf = std::make_shared<Meta>(m);
  mpi::Request rm = ep_.isend(target_node, kMetaTag, gpu::mem_ref(meta_buf.get(), 1));
  mpi::Request rd;
  if (c.bytes > 0) {
    rd = ep_.isend(target_node, kPutDataTagBase + rs.global_rank,
                   gpu::MemRef{c.local_ptr, c.bytes, phys_node()});
  }
  if (cfg_.rma.eager_enabled() &&
      !eager_agg_[static_cast<size_t>(target_node)].records.empty()) {
    // Ship whatever is parked for this target — records aggregated before
    // this put (their data must not wait behind a long transfer) and, for a
    // notified put, its own fence record (no reason to delay the
    // notification by the aggregation window on top of the rendezvous).
    co_await flush_eager(target_node);
  }
  co_await rm.wait();
  if (rd.valid()) co_await rd.wait();
  // Step 4: free meta info (shared_ptr) and update the device flush counter.
  co_await complete_flush(rs, c.flush_id, c.win_device_id);
}

sim::Proc<void> NodeRuntime::handle_get(int local_rank, Command c) {
  RankState& rs = rank(local_rank);
  if (c.local_already_copied) {
    if (c.notify) {
      Notification n;
      n.win_device_id = c.win_device_id;
      n.source = c.target_rank;
      n.tag = c.tag;
      co_await push_notification(local_rank, n);
    }
    co_await complete_flush(rs, c.flush_id, c.win_device_id);
    co_return;
  }
  const int target_node = c.target_rank / ranks_per_node();
  // Post the receive for the data before requesting it, so the response can
  // never be unexpected-buffered into the wrong transfer.
  mpi::Request rr = ep_.irecv(target_node, kGetDataTagBase + rs.global_rank,
                              gpu::MemRef{c.local_ptr, c.bytes, phys_node()});
  Meta m;
  m.kind = CmdKind::kGet;
  m.origin_rank = rs.global_rank;
  m.target_rank = c.target_rank;
  m.win_global_id = rs.win_translate.at(c.win_device_id);
  m.offset = c.offset;
  m.bytes = c.bytes;
  m.tag = c.tag;
  auto meta_buf = std::make_shared<Meta>(m);
  mpi::Request rm = ep_.isend(target_node, kMetaTag, gpu::mem_ref(meta_buf.get(), 1));
  co_await rm.wait();
  co_await rr.wait();
  co_await complete_flush(rs, c.flush_id, c.win_device_id);
  if (c.notify) {
    // A notified get signals the *origin* once the data arrived.
    Notification n;
    n.win_device_id = c.win_device_id;
    n.source = c.target_rank;
    n.tag = c.tag;
    co_await push_notification(local_rank, n);
  }
}

sim::Proc<void> NodeRuntime::handle_barrier(int local_rank, Command c) {
  // The device communicator covers only the device ranks; the world
  // communicator additionally includes this node's host ranks.
  assert(c.comm == Comm::kWorld || !is_host_rank(local_rank));
  (void)local_rank;
  const int comm_idx = static_cast<int>(c.comm);
  const int participants = c.comm == Comm::kWorld ? ranks_per_node() : rpd_;
  ++barrier_arrivals_[static_cast<size_t>(comm_idx)];
  if (barrier_arrivals_[static_cast<size_t>(comm_idx)] < participants) co_return;
  barrier_arrivals_[static_cast<size_t>(comm_idx)] = 0;
  if (c.comm == Comm::kWorld && ep_.size() > 1) co_await ep_.barrier();
  for (int r = 0; r < participants; ++r) {
    Ack a;
    a.kind = AckKind::kBarrierDone;
    co_await rank(r).ack_q.enqueue(a);
  }
}

sim::Proc<void> NodeRuntime::handle_finish(int local_rank, Command c) {
  RankState& rs = rank(local_rank);
  // Drain: wait until every issued remote memory access completed.
  while (rs.flush_frontier < c.flush_id) co_await rs.host_flush_trig->wait();
  Ack a;
  a.kind = AckKind::kFinished;
  co_await rs.ack_q.enqueue(a);
}

sim::Proc<void> NodeRuntime::meta_loop() {
  Meta m;
  const std::string proc_name = "meta@" + std::to_string(node());
  for (;;) {
    co_await ep_.recv(mpi::kAnySource, kMetaTag, gpu::mem_ref(&m, 1));
    // Rendezvous fence: metas travel FIFO per (origin, target) node pair and
    // the origin issues them in per-rank command order without suspension, so
    // counting kPut metas per origin rank here reconstructs the origin-side
    // rdv_issued sequence exactly (protocol.h). Assigned before the dispatch
    // suspension — concurrent handle_meta coroutines must not race for it.
    std::uint64_t rdv_seq = 0;
    if (cfg_.rma.eager_enabled() && m.kind == CmdKind::kPut) {
      rdv_seq = ++rdv_meta_seen_[m.origin_rank];
    }
    co_await dispatch_cost();
    sim_.spawn(handle_meta(m, rdv_seq), proc_name);
  }
}

sim::Proc<void> NodeRuntime::handle_meta(Meta m, std::uint64_t rdv_seq) {
  const int target_local = m.target_rank - node() * ranks_per_node();
  assert(target_local >= 0 && target_local < ranks_per_node());
  const int origin_node = m.origin_rank / ranks_per_node();
  auto it = windows_.find(m.win_global_id);
  assert(it != windows_.end() && "remote access to unknown window");
  const WinRankInfo& info = it->second.per_rank[static_cast<size_t>(target_local)];
  assert(info.valid);
  assert(m.offset + m.bytes <= info.bytes && "remote access out of window bounds");

  if (m.kind == CmdKind::kPut) {
    // Step 6 of Fig. 5: post the receive for the payload into the window,
    // then notify the target rank once the data landed.
    if (m.bytes > 0) {
      co_await ep_.recv(origin_node, kPutDataTagBase + m.origin_rank,
                        gpu::MemRef{info.base + m.offset, m.bytes, phys_node()});
    }
    if (cfg_.rma.eager_enabled()) {
      // Advance the per-origin-rank landed frontier and wake fenced batch
      // handlers. The notification (if any) arrives separately as a
      // zero-byte rdv_notify eager record — never from this coroutine.
      assert(!m.notify && "fast path on: notifications ride the eager stream");
      if (sim::InvariantObserver* obs = sim_.invariant_observer();
          obs != nullptr) {
        obs->data_put_landed(oracle_rank(m.origin_rank),
                             oracle_rank(m.target_rank));
      }
      mark_rdv_landed(m.origin_rank, rdv_seq);
    } else if (sim::InvariantObserver* obs = sim_.invariant_observer();
               obs != nullptr && m.bytes <= cfg_.mpi.eager_limit) {
      obs->data_put_landed(oracle_rank(m.origin_rank),
                           oracle_rank(m.target_rank));
    }
    if (m.notify) {
      if (sim::InvariantObserver* obs = sim_.invariant_observer();
          obs != nullptr && m.bytes <= cfg_.mpi.eager_limit) {
        obs->notify_put_delivered(oracle_rank(m.origin_rank),
                                  oracle_rank(m.target_rank), m.win_global_id,
                                  m.bytes, m.tag);
      }
      Notification n;
      n.win_device_id = info.win_device_id;
      n.source = m.origin_rank;
      n.tag = m.tag;
      co_await push_notification(target_local, n);
    }
  } else {
    assert(m.kind == CmdKind::kGet);
    // Serve the read: send the requested window range back to the origin.
    co_await ep_.send(origin_node, kGetDataTagBase + m.origin_rank,
                      gpu::MemRef{info.base + m.offset, m.bytes, phys_node()});
  }
}

sim::Proc<void> NodeRuntime::handle_eager_put(int local_rank, Command c) {
  RankState& rs = rank(local_rank);
  const int target_node = c.target_rank / ranks_per_node();
  assert(target_node != node() && "local puts use the shared-memory path");
  EagerAggregator& agg = eager_agg_[static_cast<size_t>(target_node)];

  // Byte-cap pre-flush: if appending would blow max_batch_bytes, stage the
  // parked batch first (synchronously — staging must not reorder against
  // this append) and ship it after the append below. The cap is thus a real
  // upper bound on batch payload, not a flush trigger crossed after the fact.
  std::optional<StagedEager> overflow;
  if (!agg.records.empty() && c.bytes > 0 &&
      agg.payload.size() + c.bytes > cfg_.rma.max_batch_bytes) {
    overflow = stage_eager(target_node);
  }

  EagerPutRecord r;
  r.origin_rank = rs.global_rank;
  r.target_rank = c.target_rank;
  r.win_global_id = rs.win_translate.at(c.win_device_id);
  r.offset = c.offset;
  r.bytes = c.bytes;
  r.tag = c.tag;
  r.notify = c.notify;
  // Fence on every rendezvous-path put this rank already issued to the
  // target node: the record's data/notification must not land before them.
  r.rdv_before = rs.rdv_issued[target_node];

  if (sim::InvariantObserver* obs = sim_.invariant_observer();
      obs != nullptr) {
    // Appends happen in per-rank command order (no suspension between
    // coroutine entry and here), flushes are FIFO per target, and the
    // runtime fabric channel shares the non-overtaking clamp — so the
    // eager path keeps the §III-B guarantee for every size it carries.
    obs->data_put_issued(oracle_rank(rs.global_rank),
                         oracle_rank(c.target_rank));
    if (c.notify) {
      obs->notify_put_ordered(oracle_rank(rs.global_rank),
                              oracle_rank(c.target_rank), r.win_global_id,
                              c.bytes, c.tag);
    }
  }

  const bool first = agg.records.empty();
  agg.records.push_back(r);
  agg.origins.push_back(EagerOrigin{local_rank, c.flush_id, c.win_device_id});
  if (c.bytes > 0) {
    agg.payload.insert(agg.payload.end(), c.local_ptr, c.local_ptr + c.bytes);
  }
  if (sim::Tracer* tr = dev_.tracer(); tr && tr->enabled()) tr->bump("eager_puts");
  const std::uint64_t epoch_at_append = agg.epoch;

  if (overflow) co_await ship_eager(std::move(*overflow));

  EagerAggregator& agg2 = eager_agg_[static_cast<size_t>(target_node)];
  if (agg2.epoch != epoch_at_append || agg2.records.empty()) {
    // A concurrent flush (timer or another rank's trigger) already shipped
    // the batch holding this record while we paid for the overflow ship.
    co_return;
  }
  if (agg2.records.size() >= static_cast<size_t>(cfg_.rma.max_batch) ||
      agg2.payload.size() >= cfg_.rma.max_batch_bytes) {
    co_await flush_eager(target_node);
  } else if (first) {
    sim_.spawn(eager_flush_timer(target_node, epoch_at_append),
               "eager-timer@" + std::to_string(phys_node()));
  }
}

sim::Proc<void> NodeRuntime::eager_flush_timer(int target_node,
                                               std::uint64_t epoch) {
  co_await sim_.delay(cfg_.rma.aggregation_window);
  // A size-triggered flush already shipped this batch (and bumped the
  // epoch); anything parked now belongs to a newer batch with its own timer.
  if (eager_agg_[static_cast<size_t>(target_node)].epoch != epoch) co_return;
  co_await flush_eager(target_node);
}

NodeRuntime::StagedEager NodeRuntime::stage_eager(int target_node) {
  EagerAggregator& agg = eager_agg_[static_cast<size_t>(target_node)];
  assert(!agg.records.empty());
  ++agg.epoch;  // invalidate the pending timer before any suspension
  StagedEager s;
  s.target_node = target_node;
  s.batch.origin_node = node();
  s.batch.batch_seq = ++agg.next_batch_seq;
  s.batch.records = std::move(agg.records);
  s.batch.payload =
      std::make_shared<std::vector<std::byte>>(std::move(agg.payload));
  s.origins = std::move(agg.origins);
  agg.records.clear();
  agg.origins.clear();
  agg.payload.clear();
  return s;
}

sim::Proc<void> NodeRuntime::ship_eager(StagedEager s) {
  EagerBatch b = std::move(s.batch);
  // One send call per batch (the reference path pays two MPI calls per
  // put). The dispatch resource — host worker or NIC processor — is FIFO,
  // so concurrent ships to the same target hit the wire in batch_seq order.
  co_await dispatch_cost();

  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->eager_batch_flushed(oracle_node(node()), oracle_node(s.target_node),
                             b.batch_seq, static_cast<int>(b.records.size()));
  }
  if (sim::Tracer* tr = dev_.tracer(); tr && tr->enabled()) {
    tr->bump("eager_batches");
  }
  const double wire_bytes =
      kEagerEnvelopeBytes +
      static_cast<double>(b.records.size()) * kEagerRecordWireBytes +
      static_cast<double>(b.payload->size());
  // The payload was gathered from device memory: cap wire entry at the
  // GPUDirect read rate, matching the MPI eager path for device buffers.
  fabric_.send(net::Packet{ep_.phys(node()), ep_.phys(s.target_node),
                           wire_bytes, std::move(b), net::kRuntimeChannel},
               cfg_.pcie.gpudirect_bandwidth);
  // The batch buffered the payload, so origin-side completion is local
  // completion — same semantics as the MPI eager send.
  for (const EagerOrigin& o : s.origins) {
    co_await complete_flush(rank(o.local_rank), o.flush_id, o.win_device_id);
  }
}

sim::Proc<void> NodeRuntime::flush_eager(int target_node) {
  co_await ship_eager(stage_eager(target_node));
}

sim::Proc<void> NodeRuntime::eager_loop() {
  // Job-scoped runtimes consume their private mailbox (fed by the Cluster
  // rx mux); the single-tenant default owns the fabric's runtime channel.
  sim::Mailbox<net::Packet>& rx =
      binding_.eager_rx != nullptr
          ? *binding_.eager_rx
          : fabric_.rx(phys_node(), net::kRuntimeChannel);
  for (;;) {
    net::Packet p = co_await rx.pop();
    EagerBatch b = std::any_cast<EagerBatch>(std::move(p.payload));
    co_await dispatch_cost();
    // Processed inline, not spawned: two in-flight batch handlers blocked
    // on a full notification queue could resume out of order and break the
    // FIFO delivery the oracle (and put_2d_notify) relies on.
    co_await handle_eager_batch(std::move(b));
  }
}

sim::Proc<void> NodeRuntime::handle_eager_batch(EagerBatch b) {
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->eager_batch_delivered(oracle_node(b.origin_node), oracle_node(node()),
                               b.batch_seq,
                               static_cast<int>(b.records.size()));
  }
  // Land every payload into its window, collecting notifications grouped by
  // target rank; then each group commits with a single batched queue write.
  std::vector<std::vector<Notification>> groups(
      static_cast<size_t>(ranks_per_node()));
  std::size_t off = 0;
  for (const EagerPutRecord& r : b.records) {
    // Rendezvous fence: hold this record (and with it the rest of the batch
    // and all later batches — eager_loop processes inline, keeping FIFO)
    // until every rendezvous payload its origin rank issued before it has
    // landed. The meta/payload pipeline progresses independently of this
    // coroutine, so the wait always resolves.
    if (r.rdv_before > 0) {
      RdvTracker& trk = rdv_trackers_[r.origin_rank];
      while (trk.frontier < r.rdv_before) co_await rdv_landed_trig_->wait();
    }
    const int target_local = r.target_rank - node() * ranks_per_node();
    assert(target_local >= 0 && target_local < ranks_per_node());
    auto it = windows_.find(r.win_global_id);
    assert(it != windows_.end() && "eager put to unknown window");
    const WinRankInfo& info =
        it->second.per_rank[static_cast<size_t>(target_local)];
    assert(info.valid);
    assert(r.offset + r.bytes <= info.bytes && "eager put out of window bounds");
    if (r.bytes > 0) {
      assert(b.payload != nullptr && off + r.bytes <= b.payload->size());
      std::memcpy(info.base + r.offset, b.payload->data() + off, r.bytes);
      off += r.bytes;
    }
    if (sim::InvariantObserver* obs = sim_.invariant_observer();
        obs != nullptr) {
      // rdv_notify stand-ins carry no data of their own — their payload
      // landed (and was reported) on the meta+payload pipeline.
      if (!r.rdv_notify) {
        obs->data_put_landed(oracle_rank(r.origin_rank),
                             oracle_rank(r.target_rank));
      }
      if (r.notify) {
        // bytes is diagnostic-only in the oracle; rdv_notify records report
        // 0 (the payload size lives with the rendezvous transfer).
        obs->notify_put_delivered(oracle_rank(r.origin_rank),
                                  oracle_rank(r.target_rank), r.win_global_id,
                                  r.bytes, r.tag);
      }
    }
    if (r.notify) {
      Notification n;
      n.win_device_id = info.win_device_id;
      n.source = r.origin_rank;
      n.tag = r.tag;
      groups[static_cast<size_t>(target_local)].push_back(n);
    }
  }
  for (int lr = 0; lr < ranks_per_node(); ++lr) {
    std::vector<Notification>& g = groups[static_cast<size_t>(lr)];
    if (!g.empty()) co_await push_notification_batch(lr, std::move(g));
  }
}

void NodeRuntime::mark_rdv_landed(int origin_rank, std::uint64_t seq) {
  assert(seq > 0);
  RdvTracker& trk = rdv_trackers_[origin_rank];
  trk.landed_ooo.insert(seq);
  // Rendezvous payloads can land out of order (MPI eager vs. RTS-CTS), so
  // only a contiguous prefix advances the frontier the batch fence reads.
  bool advanced = false;
  while (!trk.landed_ooo.empty() &&
         *trk.landed_ooo.begin() == trk.frontier + 1) {
    trk.landed_ooo.erase(trk.landed_ooo.begin());
    ++trk.frontier;
    advanced = true;
  }
  if (advanced) rdv_landed_trig_->notify_all();
}

sim::Proc<void> NodeRuntime::push_notification(int local_rank, Notification n) {
  if (device_initiated() && !is_host_rank(local_rank)) {
    std::vector<Notification> ns;
    ns.push_back(n);
    co_await board_deliver(local_rank, std::move(ns));
    co_return;
  }
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->notification_delivered();
  }
  sim::Tracer* tr = dev_.tracer();
  if (tr == nullptr || !tr->enabled()) {
    co_await rank(local_rank).notif_q.enqueue(n);
    co_return;
  }
  const sim::Time begin = sim_.now();
  co_await rank(local_rank).notif_q.enqueue(n);
  tr->record(sim::TraceSpan{begin, sim_.now(), phys_node(), sim::kRuntimeLane,
                            "notify", sim::Category::kNotify, 0.0});
  tr->bump("notifications_delivered");
}

sim::Proc<void> NodeRuntime::push_notification_batch(
    int local_rank, std::vector<Notification> ns) {
  assert(!ns.empty());
  if (device_initiated() && !is_host_rank(local_rank)) {
    co_await board_deliver(local_rank, std::move(ns));
    co_return;
  }
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    for (std::size_t i = 0; i < ns.size(); ++i) obs->notification_delivered();
  }
  const double n = static_cast<double>(ns.size());
  sim::Tracer* tr = dev_.tracer();
  if (tr == nullptr || !tr->enabled()) {
    co_await rank(local_rank).notif_q.enqueue_batch(std::move(ns));
    co_return;
  }
  const sim::Time begin = sim_.now();
  co_await rank(local_rank).notif_q.enqueue_batch(std::move(ns));
  tr->record(sim::TraceSpan{begin, sim_.now(), phys_node(), sim::kRuntimeLane,
                            "notify", sim::Category::kNotify, 0.0});
  tr->bump("notifications_delivered", n);
}

sim::Proc<void> NodeRuntime::board_deliver(int local_rank,
                                           std::vector<Notification> ns) {
  assert(device_initiated() && !is_host_rank(local_rank));
  assert(!ns.empty());
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    for (std::size_t i = 0; i < ns.size(); ++i) {
      obs->notification_delivered(/*via_board=*/true);
    }
  }
  const double n = static_cast<double>(ns.size());
  const double bytes = n * static_cast<double>(sizeof(Notification));
  // The records deposit at posted-write visibility; H2D posted writes commit
  // in issue order, sharing the ordering clamp with the flush-counter
  // writes, so board arrivals keep the notif_q's FIFO delivery guarantee.
  RankState* rs = &rank(local_rank);
  auto payload = std::make_shared<std::vector<Notification>>(std::move(ns));
  sim::Tracer* tr = dev_.tracer();
  const bool traced = tr != nullptr && tr->enabled();
  const sim::Time begin = sim_.now();
  sim::Simulation* s = &sim_;
  const std::int32_t trace_node = phys_node();
  auto commit = [rs, payload, tr, traced, begin, s, trace_node, n, bytes] {
    for (const Notification& rec : *payload) rs->board.deposit(rec);
    rs->notif_q.nonempty_trigger().notify_all();
    if (traced) {
      tr->record(sim::TraceSpan{begin, s->now(), trace_node, sim::kNicLane,
                                "board_notify", sim::Category::kNotify, bytes});
      tr->bump("board_notifications", n);
      tr->bump("notifications_delivered", n);
    }
  };
  co_await pcie_.post_write(pcie::Dir::kHostToDevice, bytes, std::move(commit));
}

sim::Proc<void> NodeRuntime::complete_flush(RankState& rs, std::uint64_t id,
                                            std::int32_t win_device_id) {
  if (id == 0) co_return;  // operation outside flush tracking
  if (sim::Tracer* tr = dev_.tracer(); tr && tr->enabled()) {
    // Mirrors the +1 in the device library's issue path (issue_rma).
    tr->counter_add(sim_.now(), phys_node(), "inflight_rma", -1.0);
  }
  rs.flush_done_ooo.insert(id);
  bool advanced = false;
  while (rs.flush_done_ooo.count(rs.flush_frontier + 1) > 0) {
    rs.flush_done_ooo.erase(rs.flush_frontier + 1);
    ++rs.flush_frontier;
    advanced = true;
  }
  if (advanced) rs.host_flush_trig->notify_all();

  // One posted write carries both the per-window completion count (the
  // paper's window flush) and, when it advanced, the contiguous frontier.
  RankState* rsp = &rs;
  const std::uint64_t frontier = advanced ? rs.flush_frontier : 0;
  auto apply = [rsp, win_device_id, frontier] {
    if (win_device_id >= 0) ++rsp->win_completed[win_device_id];
    if (frontier > rsp->flush_done) rsp->flush_done = frontier;
    rsp->flush_trig.notify_all();
  };
  if (is_host_rank(rs.local_rank)) {
    apply();  // host-rank state: no PCIe crossing
    co_return;
  }
  co_await pcie_.post_write(pcie::Dir::kHostToDevice, 2 * sizeof(std::uint64_t),
                            std::move(apply));
}

sim::Proc<void> NodeRuntime::log_loop() {
  for (;;) {
    LogEntry e = co_await log_q_->dequeue();
    co_await host_dispatch_cost();
    log_lines_.push_back("rank " + std::to_string(e.rank) + ": " +
                         std::string(e.text) + " " + std::to_string(e.value));
  }
}

}  // namespace dcuda::rt
