#pragma once

// Host↔device circular-buffer queue (§III-C of the paper).
//
// The ring lives in receiver memory. The sender embeds a sequence number in
// every entry, so the receiver detects valid entries without a shared head
// pointer, and one posted transaction suffices per enqueue. Flow control is
// credit based: the sender decrements a local free counter per enqueue and
// only when it reaches zero pays an extra (mapped-read) transaction to fetch
// the receiver's tail pointer.
//
// The queue is functional, not just a timing model: entries really move
// through ring slots guarded by sequence numbers, and the tests exercise
// wrap-around, credit exhaustion, and overwrite protection.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/invariants.h"
#include "sim/proc.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/trigger.h"

namespace dcuda::queue {

// How enqueue operations reach the receiver's memory. The entry write is
// posted (issuer continues; `commit` fires when the write is visible at the
// receiver); the tail read blocks the issuer for a round trip.
struct Transport {
  // write(bytes, commit): deliver `bytes` and invoke commit() at visibility.
  std::function<sim::Proc<void>(double, std::function<void()>)> write;
  // read_tail(bytes): blocking remote read of the tail pointer.
  std::function<sim::Proc<void>(double)> read_tail;
};

// A zero-cost transport for queues whose both ends live in the same memory.
Transport local_transport(sim::Simulation& s);

template <typename Entry>
class CircularQueue {
 public:
  CircularQueue(sim::Simulation& s, int capacity, Transport transport)
      : sim_(s),
        transport_(std::move(transport)),
        ring_(static_cast<size_t>(capacity)),
        credits_(capacity),
        nonempty_(s) {
    assert(capacity > 0);
  }

  // Observability hook (docs/OBSERVABILITY.md): enqueue commits and
  // dequeues maintain the device-wide `<name>_depth` counter and bump
  // `<name>_enqueues` / `<name>_tail_reads` metrics on the tracer. Many
  // queues may share one (tracer, device, name) triple — the counter then
  // aggregates their occupancy.
  void set_tracer(sim::Tracer* t, std::int32_t device, const std::string& name) {
    tracer_ = t;
    trace_device_ = device;
    depth_counter_ = name + "_depth";
    enqueue_metric_ = name + "_enqueues";
    tail_read_metric_ = name + "_tail_reads";
  }

  // Sender side. Blocks (simulated) while the queue is full; costs one
  // posted write plus an occasional tail read.
  sim::Proc<void> enqueue(Entry e) {
    while (credits_ == 0) {
      ++tail_reads_;
      if (traced()) tracer_->bump(tail_read_metric_);
      co_await transport_.read_tail(sizeof(std::uint64_t));
      recompute_credits();
      if (credits_ == 0) co_await sim_.delay(full_poll_interval_);
    }
    --credits_;
    const std::uint64_t seq = ++send_count_;
    if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
      obs->queue_credit(send_count_, recv_count_, capacity());
    }
    ++enqueues_;
    if (traced()) tracer_->bump(enqueue_metric_);
    // Stage the entry into its ring slot right away: holding a credit means
    // the receiver already consumed the slot's previous occupant, and the
    // entry stays invisible until the sequence number is committed below.
    // The commit closure then captures only (this, seq) — small enough for
    // std::function's inline storage, so the posted write allocates nothing.
    {
      Slot& slot = ring_[static_cast<size_t>((seq - 1) % ring_.size())];
      assert(slot.seq + ring_.size() == seq || slot.seq == 0);
      slot.entry = std::move(e);
    }
    // The posted write carries entry + sequence number in one transaction.
    co_await transport_.write(
        sizeof(Entry) + sizeof(std::uint64_t), [this, seq] {
          Slot& slot = ring_[static_cast<size_t>((seq - 1) % ring_.size())];
          slot.seq = seq;
          if (traced()) {
            tracer_->counter_add(sim_.now(), trace_device_, depth_counter_, 1.0);
          }
          nonempty_.notify_all();
        });
  }

  // Batched sender side (the eager path's notification sweep, §III-C spirit:
  // one transaction, many entries). Stages as many entries as the sender
  // holds credits for and commits them with a single posted write carrying
  // all entries plus one sequence number; the receiver sees the whole chunk
  // appear atomically. Falls back to multiple chunks when credits run short,
  // so any batch size makes progress against any capacity.
  sim::Proc<void> enqueue_batch(std::vector<Entry> es) {
    std::size_t next = 0;
    while (next < es.size()) {
      while (credits_ == 0) {
        ++tail_reads_;
        if (traced()) tracer_->bump(tail_read_metric_);
        co_await transport_.read_tail(sizeof(std::uint64_t));
        recompute_credits();
        if (credits_ == 0) co_await sim_.delay(full_poll_interval_);
      }
      const std::uint64_t chunk =
          std::min<std::uint64_t>({es.size() - next,
                                   static_cast<std::uint64_t>(credits_),
                                   kMaxBatchChunk});
      credits_ -= static_cast<int>(chunk);
      const std::uint64_t first_seq = send_count_ + 1;
      send_count_ += chunk;
      if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
        obs->queue_credit(send_count_, recv_count_, capacity());
      }
      enqueues_ += chunk;
      if (traced()) tracer_->bump(enqueue_metric_, static_cast<double>(chunk));
      for (std::uint64_t i = 0; i < chunk; ++i) {
        Slot& slot =
            ring_[static_cast<size_t>((first_seq + i - 1) % ring_.size())];
        assert(slot.seq + ring_.size() == first_seq + i || slot.seq == 0);
        slot.entry = std::move(es[next + i]);
      }
      next += chunk;
      // One posted transaction carries every staged entry plus a single
      // sequence number; the commit closure packs (first_seq, chunk) into
      // one word so the posted write still allocates nothing.
      assert(first_seq < (1ull << 48) &&
             "packed commit word reserves 48 bits for the sequence");
      const std::uint64_t packed = (first_seq << 16) | chunk;
      co_await transport_.write(
          static_cast<double>(chunk) * sizeof(Entry) + sizeof(std::uint64_t),
          [this, packed] {
            const std::uint64_t first = packed >> 16;
            const std::uint64_t n = packed & 0xffff;
            for (std::uint64_t i = 0; i < n; ++i) {
              ring_[static_cast<size_t>((first + i - 1) % ring_.size())].seq =
                  first + i;
            }
            if (traced()) {
              tracer_->counter_add(sim_.now(), trace_device_, depth_counter_,
                                   static_cast<double>(n));
            }
            nonempty_.notify_all();
          });
    }
  }

  // Receiver side: local memory poll, consumes the head entry if its
  // sequence number matches.
  std::optional<Entry> try_dequeue() {
    Slot& slot = ring_[static_cast<size_t>(recv_count_ % ring_.size())];
    if (slot.seq != recv_count_ + 1) return std::nullopt;
    ++recv_count_;  // the tail pointer, in receiver memory
    if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
      obs->queue_credit(send_count_, recv_count_, capacity());
    }
    if (traced()) {
      tracer_->counter_add(sim_.now(), trace_device_, depth_counter_, -1.0);
    }
    return slot.entry;
  }

  sim::Proc<Entry> dequeue() {
    for (;;) {
      if (auto e = try_dequeue()) co_return *e;
      co_await nonempty_.wait();
    }
  }

  bool empty() const {
    const Slot& slot = ring_[static_cast<size_t>(recv_count_ % ring_.size())];
    return slot.seq != recv_count_ + 1;
  }

  sim::Trigger& nonempty_trigger() { return nonempty_; }

  int capacity() const { return static_cast<int>(ring_.size()); }
  std::uint64_t enqueues() const { return enqueues_; }
  std::uint64_t tail_reads() const { return tail_reads_; }

 private:
  // Upper bound on entries per batched commit: the commit closure packs the
  // count into the low 16 bits of one word (see enqueue_batch).
  static constexpr std::uint64_t kMaxBatchChunk = 0xffff;

  struct Slot {
    std::uint64_t seq = 0;
    Entry entry{};
  };

  void recompute_credits() {
    credits_ = static_cast<int>(static_cast<std::uint64_t>(capacity()) -
                                (send_count_ - recv_count_));
  }

  bool traced() const { return tracer_ != nullptr && tracer_->enabled(); }

  sim::Tracer* tracer_ = nullptr;
  std::int32_t trace_device_ = -1;
  std::string depth_counter_;
  std::string enqueue_metric_;
  std::string tail_read_metric_;

  sim::Simulation& sim_;
  Transport transport_;
  std::vector<Slot> ring_;
  std::uint64_t send_count_ = 0;  // sender-side
  std::uint64_t recv_count_ = 0;  // receiver-side tail
  int credits_;
  std::uint64_t enqueues_ = 0;
  std::uint64_t tail_reads_ = 0;
  sim::Dur full_poll_interval_ = sim::micros(2.0);
  sim::Trigger nonempty_;
};

}  // namespace dcuda::queue
