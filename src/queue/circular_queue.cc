#include "queue/circular_queue.h"

namespace dcuda::queue {

Transport local_transport(sim::Simulation& s) {
  Transport t;
  t.write = [&s](double, std::function<void()> commit) -> sim::Proc<void> {
    s.schedule(0.0, std::move(commit));
    co_return;
  };
  t.read_tail = [](double) -> sim::Proc<void> { co_return; };
  return t;
}

// Transport over a PCIe link is constructed in runtime/ (it owns the link
// and the direction conventions); this translation unit only provides the
// local variant to keep queue/ free of a pcie dependency.

}  // namespace dcuda::queue
