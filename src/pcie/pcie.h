#pragma once

// Transaction-level PCI-Express link model.
//
// Two independent simplex directions (host→device, device→host), each
// serializing its traffic. Three operation classes, matching §III-C of the
// paper:
//  * posted mapped writes (gdrcopy-style): the issuer pays a small issue
//    cost and continues; the data becomes visible at the other side after
//    serialization + transaction latency. Posted writes in one direction
//    commit in issue order (PCIe ordering rules).
//  * mapped reads: the issuer blocks for a round trip.
//  * DMA transfers: startup latency (engine setup) + serialization at link
//    bandwidth; the issuer blocks until completion.

#include <cstdint>
#include <functional>

#include "sim/config.h"
#include "sim/proc.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace dcuda::pcie {

enum class Dir { kHostToDevice = 0, kDeviceToHost = 1 };

class PcieLink {
 public:
  PcieLink(sim::Simulation& s, const sim::PcieConfig& cfg)
      : sim_(s), cfg_(cfg) {}
  PcieLink(const PcieLink&) = delete;
  PcieLink& operator=(const PcieLink&) = delete;

  // Posted mapped write: issuer pays cfg.post_cost, `on_visible` fires at
  // the far side after serialization + txn latency, in issue order.
  sim::Proc<void> post_write(Dir d, double bytes, std::function<void()> on_visible);

  // Device→NIC doorbell (RuntimeBackend::kDeviceInitiated): a posted mapped
  // write of a command descriptor that rings the NIC's command processor.
  // Timing and ordering are exactly post_write — doorbells share the lane's
  // in-order visibility clamp with every other posted write — but the
  // transaction is counted and traced separately ("doorbell" spans on the
  // NIC lane, docs/OBSERVABILITY.md) so --trace output distinguishes
  // doorbell rings from generic queue writes.
  sim::Proc<void> doorbell(Dir d, double bytes, std::function<void()> on_ring);

  // Blocking mapped read of `bytes` flowing in direction `d` (the direction
  // the *data* travels); round-trip latency.
  sim::Proc<void> mapped_read(Dir d, double bytes);

  // Blocking DMA transfer.
  sim::Proc<void> dma(Dir d, double bytes);

  // Observability: lane-occupancy spans ("h2d"/"d2h") and cumulative
  // `pcie_bytes` counters for the owning node (docs/OBSERVABILITY.md).
  void set_tracer(sim::Tracer* t, std::int32_t node) {
    tracer_ = t;
    trace_node_ = node;
  }

  // Statistics (ablation_queue counts transactions per enqueue).
  std::uint64_t transactions(Dir d) const { return lane(d).txns; }
  std::uint64_t doorbells() const { return doorbells_; }
  double bytes_transferred(Dir d) const { return lane(d).bytes; }
  const sim::PcieConfig& config() const { return cfg_; }

 private:
  struct Lane {
    sim::Time free_at = 0.0;
    // Latest posted-write visibility time, the clamp that keeps posted
    // writes committing in issue order under completion jitter.
    sim::Time visible_free = 0.0;
    std::uint64_t txns = 0;
    double bytes = 0.0;
  };
  Lane& lane(Dir d) { return lanes_[static_cast<int>(d)]; }
  const Lane& lane(Dir d) const { return lanes_[static_cast<int>(d)]; }

  // Reserves the lane for `bytes` and returns the completion time of the
  // serialization (before latency).
  sim::Time serialize(Dir d, double bytes);

  // Seed-derived extra completion latency for blocking transfers (0 when no
  // perturbation is installed).
  sim::Dur completion_jitter();

  sim::Simulation& sim_;
  sim::PcieConfig cfg_;
  sim::Tracer* tracer_ = nullptr;
  std::int32_t trace_node_ = -1;
  Lane lanes_[2];
  std::uint64_t doorbells_ = 0;
};

}  // namespace dcuda::pcie
