#include "pcie/pcie.h"

#include <algorithm>

namespace dcuda::pcie {

sim::Time PcieLink::serialize(Dir d, double bytes) {
  Lane& l = lane(d);
  const sim::Time start = std::max(sim_.now(), l.free_at);
  const sim::Time end = start + bytes / cfg_.bandwidth;
  l.free_at = end;
  ++l.txns;
  l.bytes += bytes;
  if (tracer_ != nullptr && tracer_->enabled()) {
    const bool h2d = d == Dir::kHostToDevice;
    tracer_->record(sim::TraceSpan{
        start, end, trace_node_, h2d ? sim::kPcieLaneH2D : sim::kPcieLaneD2H,
        h2d ? "h2d" : "d2h", sim::Category::kPcie, bytes});
    tracer_->counter_set(end, trace_node_,
                         h2d ? "pcie_h2d_bytes" : "pcie_d2h_bytes", l.bytes);
    tracer_->bump("pcie_transactions");
  }
  return end;
}

sim::Proc<void> PcieLink::post_write(Dir d, double bytes,
                                     std::function<void()> on_visible) {
  const sim::Time done = serialize(d, bytes);
  sim::Time visible = done + cfg_.txn_latency;
  if (sim::Perturbation* pert = sim_.perturbation(); pert != nullptr) {
    // Bounded completion jitter, clamped so posted writes in one direction
    // stay visible in strictly increasing order — PCIe ordering rules
    // guarantee posted writes commit in issue order, and the queue protocol
    // (§III-C) depends on that.
    Lane& l = lane(d);
    visible += pert->jitter(cfg_.txn_latency);
    visible = std::max(visible, l.visible_free + sim::Perturbation::kOrderEpsilon);
    l.visible_free = visible;
  }
  sim_.schedule(visible - sim_.now(), std::move(on_visible));
  co_await sim_.delay(cfg_.post_cost);
}

sim::Proc<void> PcieLink::doorbell(Dir d, double bytes,
                                   std::function<void()> on_ring) {
  ++doorbells_;
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The doorbell span covers flight time: issue to ring at the NIC. The
    // PCIe lane occupancy itself is traced by serialize() like any write.
    sim::Tracer* tr = tracer_;
    const std::int32_t node = trace_node_;
    const sim::Time begin = sim_.now();
    sim::Simulation* s = &sim_;
    on_ring = [tr, node, begin, s, bytes, inner = std::move(on_ring)] {
      tr->record(sim::TraceSpan{begin, s->now(), node, sim::kNicLane,
                                "doorbell", sim::Category::kQueue, bytes});
      tr->bump("doorbell_rings");
      inner();
    };
  }
  co_await post_write(d, bytes, std::move(on_ring));
}

sim::Proc<void> PcieLink::mapped_read(Dir d, double bytes) {
  const sim::Time done = serialize(d, bytes);
  // Request flight + data serialization + response flight. A non-posted
  // read blocks its issuer, so completion jitter needs no ordering clamp.
  co_await sim_.delay(done + 2.0 * cfg_.txn_latency + completion_jitter() -
                      sim_.now());
}

sim::Proc<void> PcieLink::dma(Dir d, double bytes) {
  co_await sim_.delay(cfg_.dma_startup);
  const sim::Time done = serialize(d, bytes);
  co_await sim_.delay(
      std::max(0.0, done + cfg_.txn_latency + completion_jitter() - sim_.now()));
}

sim::Dur PcieLink::completion_jitter() {
  sim::Perturbation* pert = sim_.perturbation();
  return pert != nullptr ? pert->jitter(cfg_.txn_latency) : 0.0;
}

}  // namespace dcuda::pcie
