#include "cluster/cluster.h"

#include <algorithm>

namespace dcuda {

Cluster::Cluster(sim::MachineConfig cfg, int ranks_per_device, int host_ranks)
    : cfg_(cfg), rpd_(ranks_per_device), host_ranks_(host_ranks) {
  // Backend normalization (docs/BACKENDS.md): device-initiated runs deliver
  // device-local notifications on the device by definition — the legacy
  // ablation knob must not re-route them through a host loop the backend no
  // longer runs. Normalized here, before the runtimes copy the config.
  if (cfg_.device_initiated()) {
    cfg_.runtime.local_notifications_via_host = false;
  }
  // Topology normalization (docs/TOPOLOGY.md): a rail count below one is a
  // config bug, not a request for zero NICs. Clamped here so the Fabric and
  // every component that mirrors the config agree on the effective layout.
  cfg_.net.topo.rails = std::max(1, cfg_.net.topo.rails);
  // Sharded engine (docs/PERF.md, "Parallel engine"): one logical shard per
  // node, always — the shard/thread knobs below only group shards onto
  // executors, so results are byte-identical for every setting. Must happen
  // before any component schedules events or spawns daemons.
  sim_.configure_shards(cfg_.num_nodes);
  sim_.set_executor(cfg_.shards, cfg_.threads);
  tracer_.set_shards(cfg_.num_nodes);
  // Install the perturbation before any component spawns daemons, so every
  // event of the run — including runtime startup — draws from the seeded
  // streams. Fault injection needs the kFault stream even with perturb_seed
  // 0 (a valid fault seed): armed faults install a perturbation carrying
  // kFault while the schedule classes stay off unless perturb_seed asks for
  // them — so the canonical schedule survives a pure fault run. kFault still
  // honors the perturb_classes mask, which lets the fuzz shrinker take the
  // loss dimension out of a failing case independently.
  std::uint32_t classes =
      cfg_.perturb_seed != 0
          ? (cfg_.perturb_classes & sim::Perturbation::kAllClasses)
          : 0u;
  if (cfg_.fault.any()) {
    classes |= cfg_.perturb_classes & sim::Perturbation::kFault;
  }
  if (classes != 0u) {
    sim_.set_perturbation(cfg_.perturb_seed, classes);
  }
  fabric_ = std::make_unique<net::Fabric>(sim_, cfg_.num_nodes, cfg_.net,
                                          cfg_.fault);
  fabric_->set_tracer(&tracer_);
  std::vector<gpu::Device*> dev_ptrs;
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    // Node hardware is built inside its shard so triggers/resources record
    // the right owner for the parallel-window affinity checks.
    sim::ShardGuard guard(sim_, sim_.shard_for(n));
    pcie_.push_back(std::make_unique<pcie::PcieLink>(sim_, cfg_.pcie));
    pcie_.back()->set_tracer(&tracer_, n);
    devices_.push_back(std::make_unique<gpu::Device>(sim_, n, cfg_.device,
                                                     pcie_.back().get(), &tracer_));
    dev_ptrs.push_back(devices_.back().get());
  }
  world_ = std::make_unique<mpi::World>(sim_, *fabric_, cfg_.mpi, dev_ptrs);
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    sim::ShardGuard guard(sim_, sim_.shard_for(n));
    runtimes_.push_back(std::make_unique<rt::NodeRuntime>(
        sim_, *devices_[static_cast<size_t>(n)], world_->at(n),
        *pcie_[static_cast<size_t>(n)], *fabric_, cfg_, rpd_, host_ranks_));
  }
}

sim::Proc<void> Cluster::run_device(int n, const RankFn& fn) {
  rt::NodeRuntime* runtime = runtimes_[static_cast<size_t>(n)].get();
  // The kernel std::function owns its state for the whole launch; per-block
  // invocations create one Context each (the paper's dcuda_context).
  gpu::Kernel kernel = [runtime, &fn](gpu::BlockCtx& blk) -> sim::Proc<void> {
    Context ctx;
    co_await init(ctx, KernelParam{runtime}, blk);
    co_await fn(ctx);
    co_await finish(ctx);
  };
  co_await device(n).launch(launch_config(), std::move(kernel), "dcuda");
}

sim::Proc<void> Cluster::run_host_rank(int n, int host_index, const RankFn& fn) {
  Context ctx;
  co_await init_host(ctx, KernelParam{runtimes_[static_cast<size_t>(n)].get()},
                     host_index);
  co_await fn(ctx);
  co_await finish(ctx);
}

sim::Dur Cluster::run(RankFn fn, RankFn host_fn) {
  const sim::Time t0 = sim_.now();
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    sim_.spawn_on(sim_.shard_for(n), run_device(n, fn),
                  "host@" + std::to_string(n));
    for (int h = 0; h < host_ranks_; ++h) {
      sim_.spawn_on(sim_.shard_for(n), run_host_rank(n, h, host_fn ? host_fn : fn),
                    "hostrank@" + std::to_string(n) + "/" + std::to_string(h));
    }
  }
  sim_.run();
  return sim_.now() - t0;
}

namespace {
// Spawned from a loop: must not be a capturing lambda (the closure would die
// before the coroutine does); `fn` outlives sim_.run() in the caller frame.
sim::Proc<void> host_body(const Cluster::HostFn& fn, int n) { co_await fn(n); }
}  // namespace

sim::Dur Cluster::run_hosts(HostFn fn) {
  const sim::Time t0 = sim_.now();
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    sim_.spawn_on(sim_.shard_for(n), host_body(fn, n),
                  "host@" + std::to_string(n));
  }
  sim_.run();
  return sim_.now() - t0;
}

}  // namespace dcuda
