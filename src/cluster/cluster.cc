#include "cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dcuda {

std::optional<std::string> ClusterSpec::validate() const {
  if (machine.num_nodes < 1) {
    return "machine.num_nodes must be >= 1";
  }
  if (ranks_per_device < 1) {
    return "ranks_per_device must be >= 1";
  }
  if (host_ranks < 0) {
    return "host_ranks must be >= 0";
  }
  if (machine.shards < 0) {
    return "machine.shards must be >= 0 (0 = one executor per shard)";
  }
  if (machine.threads < 1) {
    return "machine.threads must be >= 1";
  }
  const double* probs[] = {&machine.fault.drop_prob, &machine.fault.dup_prob,
                           &machine.fault.corrupt_prob,
                           &machine.fault.delay_prob,
                           &machine.fault.link_down_prob};
  for (const double* p : probs) {
    if (!(*p >= 0.0 && *p <= 1.0)) {
      return "fault probabilities must be in [0, 1]";
    }
  }
  return std::nullopt;
}

Cluster::Cluster(ClusterSpec spec)
    : cfg_(std::move(spec.machine)),
      rpd_(spec.ranks_per_device),
      host_ranks_(spec.host_ranks),
      multi_tenant_(spec.multi_tenant) {
  {
    // Re-validate through the spec view of the already-moved fields so the
    // check and the construction can't drift apart.
    ClusterSpec check{cfg_, rpd_, host_ranks_, multi_tenant_};
    if (auto err = check.validate()) {
      std::fprintf(stderr, "error: invalid ClusterSpec: %s\n", err->c_str());
      std::exit(2);
    }
  }
  // Backend normalization (docs/BACKENDS.md): device-initiated runs deliver
  // device-local notifications on the device by definition — the legacy
  // ablation knob must not re-route them through a host loop the backend no
  // longer runs. Normalized here, before the runtimes copy the config.
  if (cfg_.device_initiated()) {
    cfg_.runtime.local_notifications_via_host = false;
  }
  // Topology normalization (docs/TOPOLOGY.md): a rail count below one is a
  // config bug, not a request for zero NICs. Clamped here so the Fabric and
  // every component that mirrors the config agree on the effective layout.
  cfg_.net.topo.rails = std::max(1, cfg_.net.topo.rails);
  if (multi_tenant_) {
    // Multi-tenant mode runs the classic sequential engine: one shard, one
    // thread, whatever the executor knobs say. Jobs construct endpoints and
    // runtimes mid-simulation, which the sharded fast paths don't allow —
    // and a fixed engine layout keeps the job transcript byte-identical
    // across DCUDA_SHARDS/DCUDA_THREADS settings (check_determinism.sh,
    // cluster pass).
    sim_.configure_shards(1);
    sim_.set_executor(1, 1);
    tracer_.set_shards(1);
  } else {
    // Sharded engine (docs/PERF.md, "Parallel engine"): one logical shard
    // per node, always — the shard/thread knobs below only group shards
    // onto executors, so results are byte-identical for every setting. Must
    // happen before any component schedules events or spawns daemons.
    sim_.configure_shards(cfg_.num_nodes);
    sim_.set_executor(cfg_.shards, cfg_.threads);
    tracer_.set_shards(cfg_.num_nodes);
  }
  // Install the perturbation before any component spawns daemons, so every
  // event of the run — including runtime startup — draws from the seeded
  // streams. Fault injection needs the kFault stream even with perturb_seed
  // 0 (a valid fault seed): armed faults install a perturbation carrying
  // kFault while the schedule classes stay off unless perturb_seed asks for
  // them — so the canonical schedule survives a pure fault run. kFault still
  // honors the perturb_classes mask, which lets the fuzz shrinker take the
  // loss dimension out of a failing case independently.
  std::uint32_t classes =
      cfg_.perturb_seed != 0
          ? (cfg_.perturb_classes & sim::Perturbation::kAllClasses)
          : 0u;
  if (cfg_.fault.any()) {
    classes |= cfg_.perturb_classes & sim::Perturbation::kFault;
  }
  if (classes != 0u) {
    sim_.set_perturbation(cfg_.perturb_seed, classes);
  }
  fabric_ = std::make_unique<net::Fabric>(sim_, cfg_.num_nodes, cfg_.net,
                                          cfg_.fault);
  fabric_->set_tracer(&tracer_);
  std::vector<gpu::Device*> dev_ptrs;
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    // Node hardware is built inside its shard so triggers/resources record
    // the right owner for the parallel-window affinity checks.
    sim::ShardGuard guard(sim_, sim_.shard_for(n));
    pcie_.push_back(std::make_unique<pcie::PcieLink>(sim_, cfg_.pcie));
    pcie_.back()->set_tracer(&tracer_, n);
    devices_.push_back(std::make_unique<gpu::Device>(sim_, n, cfg_.device,
                                                     pcie_.back().get(), &tracer_));
    dev_ptrs.push_back(devices_.back().get());
  }
  if (multi_tenant_) {
    // No global world: jobs bring their own. The fabric rx mailboxes are
    // single-consumer, so one mux daemon per (node, channel) owns them for
    // the whole simulation and forwards to whichever job currently holds
    // the node (bind_rx).
    rx_sinks_.assign(
        static_cast<size_t>(cfg_.num_nodes) * net::kNumChannels, nullptr);
    for (int n = 0; n < cfg_.num_nodes; ++n) {
      for (int ch = 0; ch < net::kNumChannels; ++ch) {
        sim_.spawn(rx_mux(n, ch),
                   "rxmux@" + std::to_string(n) + "/" + std::to_string(ch),
                   /*daemon=*/true);
      }
    }
    return;
  }
  world_ = std::make_unique<mpi::World>(sim_, *fabric_, cfg_.mpi, dev_ptrs);
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    sim::ShardGuard guard(sim_, sim_.shard_for(n));
    runtimes_.push_back(std::make_unique<rt::NodeRuntime>(
        sim_, *devices_[static_cast<size_t>(n)], world_->at(n),
        *pcie_[static_cast<size_t>(n)], *fabric_, cfg_, rpd_, host_ranks_));
  }
}

sim::Proc<void> Cluster::rx_mux(int node, int channel) {
  sim::Mailbox<net::Packet>& rx = fabric_->rx(node, channel);
  const size_t slot =
      static_cast<size_t>(node) * net::kNumChannels + static_cast<size_t>(channel);
  for (;;) {
    net::Packet p = co_await rx.pop();
    sim::Mailbox<net::Packet>* sink = rx_sinks_[slot];
    if (sink != nullptr) {
      sink->push(std::move(p));
    } else {
      ++rx_dropped_;
    }
  }
}

void Cluster::bind_rx(int node, int channel, sim::Mailbox<net::Packet>* sink) {
  rx_sinks_[static_cast<size_t>(node) * net::kNumChannels +
            static_cast<size_t>(channel)] = sink;
}

sim::Proc<void> Cluster::run_device(int n, const RankFn& fn) {
  rt::NodeRuntime* runtime = runtimes_[static_cast<size_t>(n)].get();
  // The kernel std::function owns its state for the whole launch; per-block
  // invocations create one Context each (the paper's dcuda_context).
  gpu::Kernel kernel = [runtime, &fn](gpu::BlockCtx& blk) -> sim::Proc<void> {
    Context ctx;
    co_await init(ctx, KernelParam{runtime}, blk);
    co_await fn(ctx);
    co_await finish(ctx);
  };
  co_await device(n).launch(launch_config(), std::move(kernel), "dcuda");
}

sim::Proc<void> Cluster::run_host_rank(int n, int host_index, const RankFn& fn) {
  Context ctx;
  co_await init_host(ctx, KernelParam{runtimes_[static_cast<size_t>(n)].get()},
                     host_index);
  co_await fn(ctx);
  co_await finish(ctx);
}

sim::Dur Cluster::run(RankFn fn, RankFn host_fn) {
  const sim::Time t0 = sim_.now();
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    sim_.spawn_on(sim_.shard_for(n), run_device(n, fn),
                  "host@" + std::to_string(n));
    for (int h = 0; h < host_ranks_; ++h) {
      sim_.spawn_on(sim_.shard_for(n), run_host_rank(n, h, host_fn ? host_fn : fn),
                    "hostrank@" + std::to_string(n) + "/" + std::to_string(h));
    }
  }
  sim_.run();
  return sim_.now() - t0;
}

namespace {
// Spawned from a loop: must not be a capturing lambda (the closure would die
// before the coroutine does); `fn` outlives sim_.run() in the caller frame.
sim::Proc<void> host_body(const Cluster::HostFn& fn, int n) { co_await fn(n); }
}  // namespace

sim::Dur Cluster::run_hosts(HostFn fn) {
  const sim::Time t0 = sim_.now();
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    sim_.spawn_on(sim_.shard_for(n), host_body(fn, n),
                  "host@" + std::to_string(n));
  }
  sim_.run();
  return sim_.now() - t0;
}

}  // namespace dcuda
