#pragma once

// A gang-scheduled dCUDA job (docs/CLUSTER.md): one whole application —
// stencil-, particle- or spmv-shaped communication, or a pure synthetic
// delay — submitted to a multi-tenant Cluster and placed by
// cluster::Scheduler onto a subset of the machine's nodes.
//
// A running job brings its own world: job-private rx mailboxes bound into
// the Cluster's fabric demux, a job-local mpi::World whose endpoints
// translate job-relative ranks to physical nodes at the wire, and one
// rt::NodeRuntime per owned node carrying a JobBinding (job-relative node
// index, oracle tag, private runtime-channel mailbox). All protocol state
// is therefore placement-independent: the same job produces the same
// schedule wherever the scheduler puts it.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mpi/mpi.h"
#include "runtime/node_runtime.h"
#include "sim/mailbox.h"
#include "sim/proc.h"
#include "sim/simulation.h"

namespace dcuda::cluster {

// Application shape of a job's per-rank body (implemented in job.cc against
// the dcuda:: device API).
enum class AppKind {
  kSynthetic,  // no world: the job is a pure simulated delay of `duration`
  kStencil,    // halo exchange with rank +/- 1 (notified puts, §IV-C)
  kParticles,  // ring: bulk cell put + notified count put to rank + 1
  kSpmv,       // strided scatter: notified puts to ranks + {1, 2, 4}
};

const char* to_string(AppKind app);

// Typed job-submission surface (docs/API.md "JobSpec"). An aggregate:
// designated initializers are the intended call style.
struct JobSpec {
  int id = -1;     // unique per workload, >= 0
  int user = 0;    // fair-share accounting key
  AppKind app = AppKind::kSynthetic;
  int nodes = 1;   // gang size: devices the job needs, all-or-nothing
  int ranks_per_device = 4;
  double arrival = 0.0;  // open-arrival submit time (simulated seconds)
  // Synthetic run time; real apps derive their length from iterations/bytes.
  double duration = 1e-3;
  // User-provided runtime estimate: the EASY-backfill shadow time is
  // computed from running jobs' start + estimate (docs/CLUSTER.md).
  double estimated_duration = 1e-3;
  int iterations = 3;              // real apps: communication rounds
  std::size_t bytes_per_msg = 4096;  // real apps: payload per message
  std::uint64_t seed = 0;          // per-job compute-jitter stream

  // First problem found, or nullopt when the spec is runnable.
  std::optional<std::string> validate() const;
};

// One submitted job: spec, lifecycle timestamps, and (while running) the
// job-local world. Owned by the Scheduler; finished jobs are quiesced, not
// destroyed — their suspended runtime daemons keep their mailboxes and
// triggers alive until the simulation ends.
class Job {
 public:
  Job(Cluster& cluster, JobSpec spec);
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  const JobSpec& spec() const { return spec_; }

  // Runs the job on `nodes` (physical, disjoint from every other running
  // job) to completion. `synthetic` forces the pure-delay body regardless
  // of spec().app (SchedulerConfig::synthetic, policy unit tests).
  sim::Proc<void> run(std::vector<int> nodes, bool synthetic);

  // Lifecycle timestamps (simulated seconds; < 0 = not reached).
  double submit_time = -1.0;
  double start_time = -1.0;
  double complete_time = -1.0;
  const std::vector<int>& nodes() const { return nodes_; }
  int requeues = 0;  // times preempted out of the queue

 private:
  sim::Proc<void> run_real();
  sim::Proc<void> device_main(int job_node);

  Cluster& cluster_;
  JobSpec spec_;
  std::vector<int> nodes_;  // physical placement while/after running

  // Job-local world, retained after completion (see class comment).
  std::vector<std::unique_ptr<sim::Mailbox<net::Packet>>> mpi_rx_;
  std::vector<std::unique_ptr<sim::Mailbox<net::Packet>>> rt_rx_;
  std::unique_ptr<mpi::World> world_;
  std::vector<std::unique_ptr<rt::NodeRuntime>> runtimes_;
};

}  // namespace dcuda::cluster
