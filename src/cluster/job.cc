#include "cluster/job.h"

#include <cassert>
#include <cstddef>

#include "dcuda/dcuda.h"
#include "gpu/device.h"
#include "net/fabric.h"

namespace dcuda::cluster {

namespace {

std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Deterministic per-(job, rank, iteration) compute phase in [0.5, 1.5) x
// base — enough skew that concurrent jobs interleave differently without
// making any schedule time random.
double jitter(const JobSpec& spec, int rank, int iter, double base) {
  std::uint64_t x = spec.seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
                    static_cast<std::uint64_t>(iter);
  const double u =
      static_cast<double>(splitmix(x) >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (0.5 + u);
}

constexpr double kComputePhase = 2e-5;  // seconds per iteration, pre-jitter

// Halo exchange: every rank swaps one message with rank - 1 and rank + 1
// per iteration (the paper's stencil shape, §IV-C).
sim::Proc<void> stencil_body(Context& ctx, JobSpec spec) {
  const int r = ctx.world_rank;
  const int size = ctx.world_size;
  std::vector<std::byte> halo(2 * spec.bytes_per_msg);
  std::vector<std::byte> local(spec.bytes_per_msg);
  Window win = co_await win_create(ctx, Comm::kWorld, halo.data(), halo.size());
  const bool has_left = r > 0;
  const bool has_right = r + 1 < size;
  for (int it = 0; it < spec.iterations; ++it) {
    co_await ctx.charge_compute_time(jitter(spec, r, it, kComputePhase));
    if (has_left) {
      // Lands in the left neighbor's "right halo" half.
      co_await put_notify(ctx, win, r - 1, spec.bytes_per_msg,
                          spec.bytes_per_msg, local.data(), it);
    }
    if (has_right) {
      co_await put_notify(ctx, win, r + 1, 0, spec.bytes_per_msg, local.data(),
                          it);
    }
    const int expected = (has_left ? 1 : 0) + (has_right ? 1 : 0);
    if (expected > 0) {
      co_await wait_notifications(ctx, win, kAnySource, it, expected);
    }
    co_await flush(ctx);
  }
  co_await barrier(ctx, Comm::kWorld);
  co_await win_free(ctx, win);
}

// Ring: bulk cell payload (plain put) followed by a small notified count
// put to rank + 1; wait for the neighbor's count (the particle pattern —
// data-before-notification is exactly what the oracle checks here).
sim::Proc<void> particles_body(Context& ctx, JobSpec spec) {
  const int r = ctx.world_rank;
  const int size = ctx.world_size;
  constexpr std::size_t kCountBytes = 64;
  std::vector<std::byte> inbox(spec.bytes_per_msg + kCountBytes);
  std::vector<std::byte> cells(spec.bytes_per_msg);
  Window win =
      co_await win_create(ctx, Comm::kWorld, inbox.data(), inbox.size());
  const int next = (r + 1) % size;
  for (int it = 0; it < spec.iterations; ++it) {
    co_await ctx.charge_compute_time(jitter(spec, r, it, kComputePhase));
    co_await put(ctx, win, next, 0, spec.bytes_per_msg, cells.data());
    co_await put_notify(ctx, win, next, spec.bytes_per_msg, kCountBytes,
                        cells.data(), it);
    co_await wait_notifications(ctx, win, kAnySource, it, 1);
    co_await flush(ctx);
  }
  co_await barrier(ctx, Comm::kWorld);
  co_await win_free(ctx, win);
}

// Strided scatter: notified puts to ranks + {1, 2, 4} (mod world), one
// window slot per stride — the symmetric shape means every rank also
// receives exactly one message per live stride.
sim::Proc<void> spmv_body(Context& ctx, JobSpec spec) {
  const int r = ctx.world_rank;
  const int size = ctx.world_size;
  constexpr int kStrides[] = {1, 2, 4};
  int live = 0;
  for (int s : kStrides) {
    if (s < size) ++live;
  }
  std::vector<std::byte> slots(
      static_cast<std::size_t>(live > 0 ? live : 1) * spec.bytes_per_msg);
  std::vector<std::byte> part(spec.bytes_per_msg);
  Window win =
      co_await win_create(ctx, Comm::kWorld, slots.data(), slots.size());
  for (int it = 0; it < spec.iterations; ++it) {
    co_await ctx.charge_compute_time(jitter(spec, r, it, kComputePhase));
    int slot = 0;
    for (int s : kStrides) {
      if (s >= size) continue;
      co_await put_notify(ctx, win, (r + s) % size,
                          static_cast<std::size_t>(slot) * spec.bytes_per_msg,
                          spec.bytes_per_msg, part.data(), it);
      ++slot;
    }
    if (live > 0) {
      co_await wait_notifications(ctx, win, kAnySource, it, live);
    }
    co_await flush(ctx);
  }
  co_await barrier(ctx, Comm::kWorld);
  co_await win_free(ctx, win);
}

sim::Proc<void> app_body(Context& ctx, JobSpec spec) {
  switch (spec.app) {
    case AppKind::kStencil:
      co_await stencil_body(ctx, spec);
      break;
    case AppKind::kParticles:
      co_await particles_body(ctx, spec);
      break;
    case AppKind::kSpmv:
      co_await spmv_body(ctx, spec);
      break;
    case AppKind::kSynthetic:
      break;  // handled in Job::run; never reaches a device
  }
}

}  // namespace

const char* to_string(AppKind app) {
  switch (app) {
    case AppKind::kSynthetic:
      return "synthetic";
    case AppKind::kStencil:
      return "stencil";
    case AppKind::kParticles:
      return "particles";
    case AppKind::kSpmv:
      return "spmv";
  }
  return "?";
}

std::optional<std::string> JobSpec::validate() const {
  if (id < 0) return "id must be >= 0";
  if (nodes < 1) return "nodes must be >= 1";
  if (ranks_per_device < 1) return "ranks_per_device must be >= 1";
  if (!(arrival >= 0.0)) return "arrival must be >= 0";
  if (!(duration > 0.0)) return "duration must be > 0";
  if (!(estimated_duration > 0.0)) return "estimated_duration must be > 0";
  if (iterations < 1) return "iterations must be >= 1";
  if (bytes_per_msg < 1) return "bytes_per_msg must be >= 1";
  return std::nullopt;
}

Job::Job(Cluster& cluster, JobSpec spec)
    : cluster_(cluster), spec_(std::move(spec)) {}

sim::Proc<void> Job::run(std::vector<int> nodes, bool synthetic) {
  nodes_ = std::move(nodes);
  assert(static_cast<int>(nodes_.size()) == spec_.nodes);
  if (synthetic || spec_.app == AppKind::kSynthetic) {
    co_await cluster_.sim().delay(spec_.duration);
    co_return;
  }
  co_await run_real();
}

sim::Proc<void> Job::run_real() {
  sim::Simulation& s = cluster_.sim();
  const int n = static_cast<int>(nodes_.size());
  std::vector<gpu::Device*> devs;
  std::vector<sim::Mailbox<net::Packet>*> mpi_overrides;
  for (int i = 0; i < n; ++i) {
    mpi_rx_.push_back(std::make_unique<sim::Mailbox<net::Packet>>(s));
    rt_rx_.push_back(std::make_unique<sim::Mailbox<net::Packet>>(s));
    devs.push_back(&cluster_.device(nodes_[static_cast<size_t>(i)]));
    mpi_overrides.push_back(mpi_rx_.back().get());
  }
  world_ = std::make_unique<mpi::World>(s, cluster_.fabric(),
                                        cluster_.config().mpi, devs, nodes_,
                                        mpi_overrides);
  // The oracle tag keeps 0 for "single-tenant", so concurrent jobs never
  // collide with the historical key space either.
  const int tag = spec_.id + 1;
  for (int i = 0; i < n; ++i) {
    const int phys = nodes_[static_cast<size_t>(i)];
    runtimes_.push_back(std::make_unique<rt::NodeRuntime>(
        s, *devs[static_cast<size_t>(i)], world_->at(i), cluster_.pcie(phys),
        cluster_.fabric(), cluster_.config(), spec_.ranks_per_device,
        /*host_ranks=*/0,
        rt::JobBinding{i, tag, rt_rx_[static_cast<size_t>(i)].get()}));
    cluster_.bind_rx(phys, net::kMpiChannel,
                     mpi_rx_[static_cast<size_t>(i)].get());
    cluster_.bind_rx(phys, net::kRuntimeChannel,
                     rt_rx_[static_cast<size_t>(i)].get());
  }
  std::vector<sim::JoinHandle> kernels;
  for (int i = 0; i < n; ++i) {
    kernels.push_back(
        s.spawn(device_main(i), "job" + std::to_string(spec_.id) + "@" +
                                    std::to_string(nodes_[static_cast<size_t>(i)])));
  }
  for (sim::JoinHandle& h : kernels) co_await h.join();
  // Quiesce: detach the demux so late traffic for this job is counted as a
  // drop instead of leaking into the node's next tenant. The world and
  // runtimes stay alive (suspended daemons still reference them).
  for (int i = 0; i < n; ++i) {
    const int phys = nodes_[static_cast<size_t>(i)];
    cluster_.bind_rx(phys, net::kMpiChannel, nullptr);
    cluster_.bind_rx(phys, net::kRuntimeChannel, nullptr);
  }
}

sim::Proc<void> Job::device_main(int job_node) {
  rt::NodeRuntime* runtime = runtimes_[static_cast<size_t>(job_node)].get();
  const JobSpec spec = spec_;
  gpu::Kernel kernel = [runtime, spec](gpu::BlockCtx& blk) -> sim::Proc<void> {
    Context ctx;
    co_await init(ctx, KernelParam{runtime}, blk);
    co_await app_body(ctx, spec);
    co_await finish(ctx);
  };
  const gpu::LaunchConfig lc{spec_.ranks_per_device, 128, 26};
  co_await runtime->device().launch(lc, std::move(kernel), "job");
}

}  // namespace dcuda::cluster
