#pragma once

// Seeded open-arrival workload generator for the gang scheduler
// (docs/CLUSTER.md): turns one (seed, job count) pair into a reproducible
// stream of JobSpecs — exponential interarrival gaps, a wide/narrow gang
// geometry mix, and a rotation over the real application shapes — so one
// sim::Simulation carries tens of jobs on one fabric and two runs with the
// same config produce byte-identical schedules.

#include <cstdint>
#include <vector>

#include "cluster/job.h"

namespace dcuda::cluster {

struct WorkloadConfig {
  int num_jobs = 24;
  int num_users = 3;
  std::uint64_t seed = 1;
  // Mean simulated seconds between arrivals (open arrivals: job k's
  // arrival is the sum of k exponential gaps, independent of service).
  double mean_interarrival = 1e-4;
  // Gang geometry: roughly one job in four is "wide" (half the machine and
  // up), the rest draw 1..max(2, nodes/4) — small jobs are what backfill
  // slides into the wide jobs' shadow.
  double wide_fraction = 0.25;
  // Wide gangs run this much longer than the narrow draw (duration,
  // iterations, and estimate all scale): big jobs being long is both the
  // realistic mix and the adversarial case for FIFO — a long wide queue
  // head idles the leftover nodes that backfill would fill.
  double wide_duration_factor = 1.0;
  // Real-app knobs applied to every generated job.
  int ranks_per_device = 2;
  int min_iterations = 2;
  int max_iterations = 4;
  std::size_t bytes_per_msg = 4096;
  // Synthetic-mode durations (SchedulerConfig::synthetic): [min, max),
  // estimates equal durations (exact-estimate EASY).
  double min_duration = 2e-4;
  double max_duration = 1e-3;
};

// Generates `cfg.num_jobs` specs for a `cluster_nodes`-node machine, ids
// 0..n-1 in arrival order.
std::vector<JobSpec> generate_workload(const WorkloadConfig& cfg,
                                       int cluster_nodes);

}  // namespace dcuda::cluster
