#pragma once

// Multi-tenant gang scheduler (docs/CLUSTER.md): places whole dCUDA jobs
// (cluster::Job) onto disjoint node subsets of one multi-tenant Cluster.
// Jobs arrive at simulated times (open arrivals), queue when the machine is
// full, and run all-or-nothing on their gang. Three policies:
//
//  * kFifo      — strict arrival order; the queue head blocks everyone.
//  * kBackfill  — EASY backfill: the head gets a shadow-time reservation
//                 from running jobs' estimated completions, and a later job
//                 may jump the queue only if its own estimate finishes
//                 before the shadow time — the head is never delayed
//                 (relative to its estimates).
//  * kFairShare — queue reordered by accumulated per-user node-seconds
//                 (least-served user first), then FIFO semantics.
//
// Every lifecycle transition is reported to the sim::InvariantObserver
// cluster oracles (no lost jobs, no overlapping allocations, node
// conservation) and appended to a deterministic transcript
// (check_determinism.sh, cluster pass).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/job.h"
#include "sim/proc.h"

namespace dcuda::cluster {

enum class Policy { kFifo, kBackfill, kFairShare };
enum class Placement { kContiguous, kStrided };

const char* to_string(Policy p);

struct SchedulerConfig {
  Policy policy = Policy::kFifo;
  Placement placement = Placement::kContiguous;
  // Run every job as a pure simulated delay of its spec duration — no job
  // world is built. Policy unit tests use this: durations equal their
  // estimates, so EASY's non-starvation guarantee is exact.
  bool synthetic = false;
  // Mutation knob for the oracle self-test: false makes the allocator
  // ignore which nodes are busy, so two jobs overlap and the observer's
  // "overlapping node allocation" check must fire. Never disable outside
  // that test.
  bool check_busy = true;
};

class Scheduler {
 public:
  explicit Scheduler(Cluster& cluster, SchedulerConfig cfg = {});

  // Registers a job for its spec's arrival time. Must be called before
  // run(); an invalid spec (JobSpec::validate, duplicate id, or a gang
  // larger than the machine) is fatal (exit 2).
  void submit(JobSpec spec);

  // Pulls a *queued* job out of the queue and re-enters it at the tail
  // (its requeue count increments). Running or finished jobs are not
  // preempted — returns false. Callable from job bodies / test procs.
  bool preempt(int job_id);

  // Runs every submitted job to completion; returns the makespan (first
  // arrival handled at its simulated time, so with arrivals starting at 0
  // this is the last completion time).
  double run();

  // -- Results ---------------------------------------------------------

  const Job& job(int job_id) const;
  int completed_jobs() const;
  double makespan() const { return makespan_; }
  // Busy node-seconds / (machine nodes x makespan).
  double utilization() const;
  // start - submit per completed job, in job-id order.
  std::vector<double> wait_times() const;
  // One line per lifecycle event ("t=<time> submit/start/complete/preempt
  // job=<id> ..."), in simulated-event order.
  const std::vector<std::string>& transcript() const { return transcript_; }

 private:
  struct Entry {
    JobSpec spec;
    std::unique_ptr<Job> job;
    bool queued = false;
    bool running = false;
    bool done = false;
  };

  sim::Proc<void> arrival(int idx);
  sim::Proc<void> execute(int idx, std::vector<int> alloc);
  // Starts every job the policy admits on the current free set.
  void pass();
  void start(int idx, std::vector<int> alloc);
  // Queue positions in the order the policy would serve them.
  std::vector<int> service_order() const;
  // Free-node allocation for a gang of `need`, or empty if it doesn't fit.
  std::vector<int> try_alloc(int need) const;
  // EASY shadow time: earliest estimated time the queue head could start.
  double shadow_time(int head_need) const;
  void line(const std::string& text);

  Cluster& cluster_;
  SchedulerConfig cfg_;
  std::vector<Entry> entries_;
  std::map<int, int> by_id_;      // job id -> entries_ index
  std::vector<int> queue_;        // queued entry indices, service order base
  std::vector<bool> busy_;        // per physical node
  std::map<int, double> user_usage_;  // completed node-seconds per user
  double run_start_ = 0.0;
  double makespan_ = 0.0;
  double busy_node_seconds_ = 0.0;
  std::vector<std::string> transcript_;
};

}  // namespace dcuda::cluster
