#include "cluster/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "sim/invariants.h"

namespace dcuda::cluster {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFifo:
      return "fifo";
    case Policy::kBackfill:
      return "backfill";
    case Policy::kFairShare:
      return "fairshare";
  }
  return "?";
}

Scheduler::Scheduler(Cluster& cluster, SchedulerConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  if (!cluster_.multi_tenant() && !cfg_.synthetic) {
    std::fprintf(stderr,
                 "error: cluster::Scheduler needs ClusterSpec::multi_tenant "
                 "(or SchedulerConfig::synthetic)\n");
    std::exit(2);
  }
  busy_.assign(static_cast<size_t>(cluster_.num_nodes()), false);
}

void Scheduler::submit(JobSpec spec) {
  if (auto err = spec.validate()) {
    std::fprintf(stderr, "error: invalid JobSpec (job %d): %s\n", spec.id,
                 err->c_str());
    std::exit(2);
  }
  if (spec.nodes > cluster_.num_nodes()) {
    std::fprintf(stderr,
                 "error: invalid JobSpec (job %d): gang of %d nodes on a "
                 "%d-node machine\n",
                 spec.id, spec.nodes, cluster_.num_nodes());
    std::exit(2);
  }
  if (by_id_.count(spec.id) > 0) {
    std::fprintf(stderr, "error: invalid JobSpec: duplicate job id %d\n",
                 spec.id);
    std::exit(2);
  }
  by_id_[spec.id] = static_cast<int>(entries_.size());
  Entry e;
  e.job = std::make_unique<Job>(cluster_, spec);
  e.spec = std::move(spec);
  entries_.push_back(std::move(e));
}

bool Scheduler::preempt(int job_id) {
  auto it = by_id_.find(job_id);
  if (it == by_id_.end()) return false;
  const int idx = it->second;
  Entry& e = entries_[static_cast<size_t>(idx)];
  if (!e.queued) return false;  // running/done jobs are never preempted
  auto pos = std::find(queue_.begin(), queue_.end(), idx);
  assert(pos != queue_.end());
  queue_.erase(pos);
  queue_.push_back(idx);
  ++e.job->requeues;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.9f preempt job=%d",
                cluster_.sim().now(), job_id);
  line(buf);
  return true;
}

double Scheduler::run() {
  sim::Simulation& s = cluster_.sim();
  if (sim::InvariantObserver* obs = s.invariant_observer(); obs != nullptr) {
    obs->cluster_nodes(cluster_.num_nodes());
  }
  run_start_ = s.now();
  for (int i = 0; i < static_cast<int>(entries_.size()); ++i) {
    s.spawn(arrival(i),
            "arrival@job" + std::to_string(entries_[static_cast<size_t>(i)].spec.id));
  }
  s.run();
  makespan_ = s.now() - run_start_;
  return makespan_;
}

sim::Proc<void> Scheduler::arrival(int idx) {
  Entry& e = entries_[static_cast<size_t>(idx)];
  sim::Simulation& s = cluster_.sim();
  const double at = run_start_ + e.spec.arrival;
  if (at > s.now()) co_await s.delay(at - s.now());
  e.job->submit_time = s.now();
  e.queued = true;
  queue_.push_back(idx);
  if (sim::InvariantObserver* obs = s.invariant_observer(); obs != nullptr) {
    obs->job_submitted(e.spec.id);
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%.9f submit job=%d user=%d nodes=%d",
                s.now(), e.spec.id, e.spec.user, e.spec.nodes);
  line(buf);
  pass();
}

std::vector<int> Scheduler::service_order() const {
  std::vector<int> order = queue_;
  if (cfg_.policy == Policy::kFairShare) {
    // Least-served user first; queue position (arrival / requeue order)
    // breaks ties, so the sort must be stable over `queue_`.
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
      const Entry& ea = entries_[static_cast<size_t>(a)];
      const Entry& eb = entries_[static_cast<size_t>(b)];
      auto usage = [this](int user) {
        auto it = user_usage_.find(user);
        return it == user_usage_.end() ? 0.0 : it->second;
      };
      return usage(ea.spec.user) < usage(eb.spec.user);
    });
  }
  return order;
}

std::vector<int> Scheduler::try_alloc(int need) const {
  // check_busy = false is the oracle-self-test mutation: allocating from
  // the full machine makes concurrent jobs overlap on node 0.
  std::vector<int> free;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    if (!cfg_.check_busy || !busy_[static_cast<size_t>(n)]) free.push_back(n);
  }
  if (static_cast<int>(free.size()) < need) return {};
  if (cfg_.placement == Placement::kContiguous) {
    // First fit on a contiguous physical range.
    int run = 0;
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      const bool ok = !cfg_.check_busy || !busy_[static_cast<size_t>(n)];
      run = ok ? run + 1 : 0;
      if (run == need) {
        std::vector<int> alloc;
        for (int k = n - need + 1; k <= n; ++k) alloc.push_back(k);
        return alloc;
      }
    }
    return {};
  }
  // Strided: spread the gang evenly over the free list. Any free count
  // >= need fits, so count-based admission (EASY shadow time) is exact.
  const int stride = static_cast<int>(free.size()) / need;
  std::vector<int> alloc;
  for (int i = 0; i < need; ++i) {
    alloc.push_back(free[static_cast<size_t>(i * stride)]);
  }
  return alloc;
}

double Scheduler::shadow_time(int head_need) const {
  // Earliest time the head's gang fits, assuming running jobs complete at
  // start + estimate. Overrunning jobs make the shadow `now` (their
  // estimated completion is in the past), which admits no backfill —
  // conservative, never delays the head further.
  int free_count = 0;
  for (bool b : busy_) {
    if (!b) ++free_count;
  }
  std::vector<std::pair<double, int>> running;  // (est complete, gang size)
  for (const Entry& e : entries_) {
    if (!e.running) continue;
    running.emplace_back(e.job->start_time + e.spec.estimated_duration,
                         e.spec.nodes);
  }
  std::sort(running.begin(), running.end());
  const double now = cluster_.sim().now();
  for (const auto& [at, n] : running) {
    if (free_count >= head_need) break;
    free_count += n;
    if (free_count >= head_need) return std::max(at, now);
  }
  return now;  // fits now count-wise (placement fragmentation): no slack
}

void Scheduler::pass() {
  for (;;) {
    if (queue_.empty()) return;
    const std::vector<int> order = service_order();
    const Entry& head = entries_[static_cast<size_t>(order[0])];
    std::vector<int> alloc = try_alloc(head.spec.nodes);
    if (!alloc.empty()) {
      start(order[0], std::move(alloc));
      continue;  // the free set changed; re-derive the order
    }
    if (cfg_.policy != Policy::kBackfill) return;
    // EASY: a later job may start now only if its estimate finishes before
    // the head's shadow time — the head's reservation is never pushed.
    const double shadow = shadow_time(head.spec.nodes);
    const double now = cluster_.sim().now();
    bool backfilled = false;
    for (size_t i = 1; i < order.size(); ++i) {
      const Entry& cand = entries_[static_cast<size_t>(order[i])];
      if (now + cand.spec.estimated_duration > shadow) continue;
      std::vector<int> fill = try_alloc(cand.spec.nodes);
      if (fill.empty()) continue;
      start(order[i], std::move(fill));
      backfilled = true;
      break;  // free set changed; restart the whole pass
    }
    if (!backfilled) return;
  }
}

void Scheduler::start(int idx, std::vector<int> alloc) {
  Entry& e = entries_[static_cast<size_t>(idx)];
  sim::Simulation& s = cluster_.sim();
  auto pos = std::find(queue_.begin(), queue_.end(), idx);
  assert(pos != queue_.end());
  queue_.erase(pos);
  e.queued = false;
  e.running = true;
  e.job->start_time = s.now();
  for (int n : alloc) busy_[static_cast<size_t>(n)] = true;
  if (sim::InvariantObserver* obs = s.invariant_observer(); obs != nullptr) {
    obs->job_started(e.spec.id, alloc);
  }
  std::string nodes;
  for (int n : alloc) {
    if (!nodes.empty()) nodes += ",";
    nodes += std::to_string(n);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.9f start job=%d nodes=", s.now(),
                e.spec.id);
  line(buf + nodes);
  s.spawn(execute(idx, std::move(alloc)), "job" + std::to_string(e.spec.id));
}

sim::Proc<void> Scheduler::execute(int idx, std::vector<int> alloc) {
  Entry& e = entries_[static_cast<size_t>(idx)];
  sim::Simulation& s = cluster_.sim();
  co_await e.job->run(alloc, cfg_.synthetic);
  e.running = false;
  e.done = true;
  e.job->complete_time = s.now();
  const double span = e.job->complete_time - e.job->start_time;
  busy_node_seconds_ += span * static_cast<double>(e.spec.nodes);
  user_usage_[e.spec.user] += span * static_cast<double>(e.spec.nodes);
  for (int n : e.job->nodes()) busy_[static_cast<size_t>(n)] = false;
  if (sim::InvariantObserver* obs = s.invariant_observer(); obs != nullptr) {
    obs->job_completed(e.spec.id);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.9f complete job=%d", s.now(),
                e.spec.id);
  line(buf);
  pass();
}

void Scheduler::line(const std::string& text) { transcript_.push_back(text); }

const Job& Scheduler::job(int job_id) const {
  auto it = by_id_.find(job_id);
  assert(it != by_id_.end());
  return *entries_[static_cast<size_t>(it->second)].job;
}

int Scheduler::completed_jobs() const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.done) ++n;
  }
  return n;
}

double Scheduler::utilization() const {
  if (makespan_ <= 0.0) return 0.0;
  return busy_node_seconds_ /
         (static_cast<double>(cluster_.num_nodes()) * makespan_);
}

std::vector<double> Scheduler::wait_times() const {
  std::vector<std::pair<int, double>> byid;
  for (const Entry& e : entries_) {
    if (e.done) byid.emplace_back(e.spec.id, e.job->start_time - e.job->submit_time);
  }
  std::sort(byid.begin(), byid.end());
  std::vector<double> out;
  for (const auto& [id, w] : byid) out.push_back(w);
  return out;
}

}  // namespace dcuda::cluster
