#include "cluster/workload.h"

#include <algorithm>
#include <cmath>

namespace dcuda::cluster {

namespace {

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  int range(int lo, int hi) {  // [lo, hi], hi >= lo
    return lo + static_cast<int>(next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
  double exponential(double mean) {
    // 1 - u in (0, 1]: log never sees zero.
    return -std::log(1.0 - uniform()) * mean;
  }
};

}  // namespace

std::vector<JobSpec> generate_workload(const WorkloadConfig& cfg,
                                       int cluster_nodes) {
  Rng rng{cfg.seed * 0x2545f4914f6cdd1dull + 0x853c49e6748fea9bull};
  std::vector<JobSpec> jobs;
  double clock = 0.0;
  constexpr AppKind kApps[] = {AppKind::kStencil, AppKind::kParticles,
                               AppKind::kSpmv};
  for (int i = 0; i < cfg.num_jobs; ++i) {
    clock += rng.exponential(cfg.mean_interarrival);
    JobSpec s;
    s.id = i;
    s.user = cfg.num_users > 0 ? rng.range(0, cfg.num_users - 1) : 0;
    s.app = kApps[static_cast<size_t>(rng.range(0, 2))];
    const bool wide = rng.uniform() < cfg.wide_fraction && cluster_nodes >= 2;
    if (wide) {
      s.nodes = rng.range(std::max(2, cluster_nodes / 2),
                          std::max(2, (3 * cluster_nodes) / 4));
    } else {
      s.nodes = rng.range(1, std::max(2, cluster_nodes / 4));
    }
    s.nodes = std::min(s.nodes, cluster_nodes);
    s.ranks_per_device = cfg.ranks_per_device;
    s.arrival = clock;
    s.duration = cfg.min_duration +
                 rng.uniform() * (cfg.max_duration - cfg.min_duration);
    // Iteration count scales with the drawn duration, so a real job's
    // actual span correlates with its runtime estimate — EASY backfill is
    // only as good as the estimates it is fed.
    const double frac =
        cfg.max_duration > cfg.min_duration
            ? (s.duration - cfg.min_duration) /
                  (cfg.max_duration - cfg.min_duration)
            : 0.0;
    s.iterations =
        cfg.min_iterations +
        static_cast<int>(frac * static_cast<double>(cfg.max_iterations -
                                                    cfg.min_iterations) +
                         0.5);
    if (wide && cfg.wide_duration_factor > 1.0) {
      s.duration *= cfg.wide_duration_factor;
      s.iterations = static_cast<int>(
          static_cast<double>(s.iterations) * cfg.wide_duration_factor + 0.5);
    }
    // Upper-bound estimates (the user's conservative guess): wide gangs
    // estimate proportionally longer.
    s.estimated_duration = s.duration * (1.0 + 0.25 * s.nodes);
    s.bytes_per_msg = cfg.bytes_per_msg;
    s.seed = rng.next();
    jobs.push_back(s);
  }
  return jobs;
}

}  // namespace dcuda::cluster
