#pragma once

// Simulated GPU cluster: N nodes, each with one device, one PCIe link, one
// MPI endpoint and one dCUDA node runtime, connected by the network fabric.
// This is the top-level entry point examples, tests and benchmarks build on.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dcuda/dcuda.h"
#include "gpu/device.h"
#include "mpi/mpi.h"
#include "net/fabric.h"
#include "pcie/pcie.h"
#include "runtime/node_runtime.h"
#include "sim/config.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace dcuda {

class Cluster {
 public:
  // ranks_per_device defaults to the paper's launch configuration: 208
  // blocks per device (the maximum the K80 keeps in flight at 128 threads
  // and 26 registers). host_ranks adds §V host ranks per node: local ranks
  // [rpd, rpd + host_ranks) run on the host CPU.
  explicit Cluster(sim::MachineConfig cfg = {}, int ranks_per_device = 208,
                   int host_ranks = 0);

  sim::Simulation& sim() { return sim_; }
  sim::Tracer& tracer() { return tracer_; }
  const sim::MachineConfig& config() const { return cfg_; }
  int num_nodes() const { return cfg_.num_nodes; }
  int ranks_per_device() const { return rpd_; }
  int host_ranks() const { return host_ranks_; }
  int ranks_per_node() const { return rpd_ + host_ranks_; }
  int world_size() const { return cfg_.num_nodes * ranks_per_node(); }

  gpu::Device& device(int node) { return *devices_[static_cast<size_t>(node)]; }
  rt::NodeRuntime& node(int n) { return *runtimes_[static_cast<size_t>(n)]; }
  mpi::Endpoint& mpi(int node) { return world_->at(node); }
  net::Fabric& fabric() { return *fabric_; }
  pcie::PcieLink& pcie(int node) { return *pcie_[static_cast<size_t>(node)]; }

  // -- dCUDA execution -------------------------------------------------

  // The per-rank program: the body of the single dCUDA kernel. The context
  // is initialized (dcuda::init) before the function runs and finalized
  // (dcuda::finish) after it returns, mirroring the paper's listing.
  using RankFn = std::function<sim::Proc<void>(Context&)>;

  // Launches the kernel on every device (and, when the cluster has host
  // ranks, `host_fn` — or `fn` if none given — once per host rank) and runs
  // the simulation to completion. Returns the simulated duration of the
  // longest kernel invocation as timed host-side (the paper's methodology).
  sim::Dur run(RankFn fn, RankFn host_fn = nullptr);

  // -- Baseline (MPI-CUDA) execution ------------------------------------

  // One host program per node (fork-join kernels + two-sided MPI).
  using HostFn = std::function<sim::Proc<void>(int node)>;
  sim::Dur run_hosts(HostFn fn);

  // Paper launch configuration for auxiliary kernels.
  gpu::LaunchConfig launch_config() const {
    return gpu::LaunchConfig{rpd_, 128, 26};
  }

 private:
  sim::Proc<void> run_device(int n, const RankFn& fn);
  sim::Proc<void> run_host_rank(int n, int host_index, const RankFn& fn);

  sim::MachineConfig cfg_;
  int rpd_;
  int host_ranks_;
  sim::Simulation sim_;
  sim::Tracer tracer_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<pcie::PcieLink>> pcie_;
  std::vector<std::unique_ptr<gpu::Device>> devices_;
  std::unique_ptr<mpi::World> world_;
  std::vector<std::unique_ptr<rt::NodeRuntime>> runtimes_;
};

}  // namespace dcuda
