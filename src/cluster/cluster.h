#pragma once

// Simulated GPU cluster: N nodes, each with one device, one PCIe link, one
// MPI endpoint and one dCUDA node runtime, connected by the network fabric.
// This is the top-level entry point examples, tests and benchmarks build on.
//
// Construction goes through ClusterSpec (named, validated fields). The
// default spec is the paper machine: one job owning every node, placed
// immediately — byte-identical to the historical positional constructor.
// spec.multi_tenant = true instead builds a shared fabric with no global
// rank world; cluster::Scheduler then places whole dCUDA jobs onto node
// subsets at simulated times (docs/CLUSTER.md).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dcuda/dcuda.h"
#include "gpu/device.h"
#include "mpi/mpi.h"
#include "net/fabric.h"
#include "pcie/pcie.h"
#include "runtime/node_runtime.h"
#include "sim/config.h"
#include "sim/mailbox.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace dcuda {

// Typed cluster construction surface (docs/API.md "ClusterSpec"). An
// aggregate, so both designated initializers and the builder chain work:
//
//   Cluster c({.machine = m, .ranks_per_device = 4});
//   Cluster c(ClusterSpec{}.with_nodes(16).with_multi_tenant());
struct ClusterSpec {
  // The simulated machine (node count, device/net/runtime models, executor
  // and perturbation knobs). sim::apply_env fills it from DCUDA_* vars.
  sim::MachineConfig machine = {};
  // Device ranks per node. Defaults to the paper's launch configuration:
  // 208 blocks per device (the maximum the K80 keeps in flight at 128
  // threads and 26 registers).
  int ranks_per_device = 208;
  // §V host ranks per node: local ranks [rpd, rpd + host_ranks) run on the
  // host CPU.
  int host_ranks = 0;
  // Multi-tenant mode: no global MPI world or node runtimes are built; jobs
  // submitted through cluster::Scheduler own node subsets for a bounded
  // simulated time and bring their own job-local world (docs/CLUSTER.md).
  // Runs the classic sequential engine so jobs can be constructed
  // mid-simulation.
  bool multi_tenant = false;

  ClusterSpec& with_machine(sim::MachineConfig m) {
    machine = std::move(m);
    return *this;
  }
  ClusterSpec& with_nodes(int n) {
    machine.num_nodes = n;
    return *this;
  }
  ClusterSpec& with_ranks_per_device(int r) {
    ranks_per_device = r;
    return *this;
  }
  ClusterSpec& with_host_ranks(int h) {
    host_ranks = h;
    return *this;
  }
  ClusterSpec& with_multi_tenant(bool on = true) {
    multi_tenant = on;
    return *this;
  }

  // First problem found, or nullopt when the spec is constructible. The
  // Cluster constructor treats any error as fatal (exit 2): a simulation
  // must never run on a half-valid machine.
  std::optional<std::string> validate() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec = {});

  // Positional constructor kept for one release as a thin shim; call sites
  // should move to ClusterSpec's named fields. Inline so the definition
  // itself doesn't trip -Wdeprecated-declarations.
  [[deprecated("construct with Cluster(ClusterSpec) instead")]] explicit Cluster(
      sim::MachineConfig cfg, int ranks_per_device = 208, int host_ranks = 0)
      : Cluster(ClusterSpec{std::move(cfg), ranks_per_device, host_ranks}) {}

  sim::Simulation& sim() { return sim_; }
  sim::Tracer& tracer() { return tracer_; }
  const sim::MachineConfig& config() const { return cfg_; }
  int num_nodes() const { return cfg_.num_nodes; }
  int ranks_per_device() const { return rpd_; }
  int host_ranks() const { return host_ranks_; }
  int ranks_per_node() const { return rpd_ + host_ranks_; }
  int world_size() const { return cfg_.num_nodes * ranks_per_node(); }
  bool multi_tenant() const { return multi_tenant_; }

  gpu::Device& device(int node) { return *devices_[static_cast<size_t>(node)]; }
  rt::NodeRuntime& node(int n) { return *runtimes_[static_cast<size_t>(n)]; }
  mpi::Endpoint& mpi(int node) { return world_->at(node); }
  net::Fabric& fabric() { return *fabric_; }
  pcie::PcieLink& pcie(int node) { return *pcie_[static_cast<size_t>(node)]; }

  // -- dCUDA execution -------------------------------------------------

  // The per-rank program: the body of the single dCUDA kernel. The context
  // is initialized (dcuda::init) before the function runs and finalized
  // (dcuda::finish) after it returns, mirroring the paper's listing.
  using RankFn = std::function<sim::Proc<void>(Context&)>;

  // Launches the kernel on every device (and, when the cluster has host
  // ranks, `host_fn` — or `fn` if none given — once per host rank) and runs
  // the simulation to completion. Returns the simulated duration of the
  // longest kernel invocation as timed host-side (the paper's methodology).
  sim::Dur run(RankFn fn, RankFn host_fn = nullptr);

  // -- Baseline (MPI-CUDA) execution ------------------------------------

  // One host program per node (fork-join kernels + two-sided MPI).
  using HostFn = std::function<sim::Proc<void>(int node)>;
  sim::Dur run_hosts(HostFn fn);

  // Paper launch configuration for auxiliary kernels.
  gpu::LaunchConfig launch_config() const {
    return gpu::LaunchConfig{rpd_, 128, 26};
  }

  // -- Multi-tenant fabric demux ----------------------------------------
  //
  // In multi-tenant mode each node's fabric rx mailboxes are owned by one
  // mux daemon per channel; jobs bind their private mailbox as the node's
  // current sink while they own the node. Packets arriving while no sink is
  // bound (after a job finished, before the next starts) are dropped and
  // counted — late traffic of a finished job must not leak into its
  // successor's world.
  void bind_rx(int node, int channel, sim::Mailbox<net::Packet>* sink);
  std::uint64_t rx_dropped() const { return rx_dropped_; }

 private:
  sim::Proc<void> run_device(int n, const RankFn& fn);
  sim::Proc<void> run_host_rank(int n, int host_index, const RankFn& fn);
  sim::Proc<void> rx_mux(int node, int channel);

  sim::MachineConfig cfg_;
  int rpd_;
  int host_ranks_;
  bool multi_tenant_ = false;
  sim::Simulation sim_;
  sim::Tracer tracer_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<pcie::PcieLink>> pcie_;
  std::vector<std::unique_ptr<gpu::Device>> devices_;
  std::unique_ptr<mpi::World> world_;
  std::vector<std::unique_ptr<rt::NodeRuntime>> runtimes_;
  // Multi-tenant rx demux state: one slot per (node, channel).
  std::vector<sim::Mailbox<net::Packet>*> rx_sinks_;
  std::uint64_t rx_dropped_ = 0;
};

}  // namespace dcuda
